"""Tests for SRP-PHAT."""

import numpy as np
import pytest

from repro.arrays import MicArray, get_device
from repro.dsp import (
    pairwise_gcc,
    srp_max_lag_for,
    srp_phat_at_delays,
    srp_phat_lag_curve,
    srp_phat_map,
    steering_pair_lags,
)


@pytest.fixture()
def linear_array():
    positions = np.array([[-0.05, 0, 0], [0.0, 0, 0], [0.05, 0, 0]])
    return MicArray("lin", positions, sample_rate=48_000)


def propagate(array: MicArray, source: np.ndarray, n: int = 4096, seed: int = 0):
    """Ideal anechoic propagation of white noise to each mic."""
    rng = np.random.default_rng(seed)
    base = rng.standard_normal(n + 64)
    delays = array.steering_delays(source)
    samples = np.round((delays - delays.min()) * array.sample_rate).astype(int)
    return np.stack([base[32 - s : 32 - s + n] for s in samples])


class TestLagCurve:
    def test_peak_at_zero_for_broadside(self, linear_array):
        source = np.array([0.0, 3.0, 0.0])  # broadside: equal delays
        channels = propagate(linear_array, source)
        curve = srp_phat_lag_curve(channels, linear_array.pairs(), max_lag=8)
        assert int(np.argmax(curve)) == 8

    def test_coherent_source_beats_incoherent(self, linear_array):
        source = np.array([0.0, 3.0, 0.0])
        coherent = propagate(linear_array, source)
        rng = np.random.default_rng(9)
        incoherent = rng.standard_normal(coherent.shape)
        peak_c = srp_phat_lag_curve(coherent, linear_array.pairs(), 8).max()
        peak_i = srp_phat_lag_curve(incoherent, linear_array.pairs(), 8).max()
        assert peak_c > 2 * peak_i


class TestSteering:
    def test_pair_lags_zero_for_equidistant(self, linear_array):
        lags = steering_pair_lags(
            linear_array, np.array([0.0, 5.0, 0.0]), linear_array.pairs()
        )
        assert np.all(lags == 0)

    def test_endfire_lags_match_spacing(self, linear_array):
        lags = steering_pair_lags(
            linear_array, np.array([100.0, 0.0, 0.0]), linear_array.pairs()
        )
        # Pair (0, 2): mic0 is 0.1 m farther -> positive delay difference.
        pair_index = linear_array.pairs().index((0, 2))
        expected = round(0.1 / 343.0 * 48_000)
        assert lags[pair_index] == expected

    def test_srp_at_true_delays_is_large(self, linear_array):
        source = np.array([2.0, 3.0, 0.0])
        channels = propagate(linear_array, source)
        pairs = linear_array.pairs()
        true_lags = steering_pair_lags(linear_array, source, pairs)
        wrong_lags = true_lags + 5
        max_lag = 16
        power_true = srp_phat_at_delays(channels, pairs, true_lags, max_lag)
        power_wrong = srp_phat_at_delays(channels, pairs, wrong_lags, max_lag)
        assert power_true > power_wrong


class TestMap:
    def test_map_peaks_near_source(self, linear_array):
        source = np.array([1.0, 2.0, 0.0])
        channels = propagate(linear_array, source)
        angles = np.deg2rad(np.arange(0, 181, 15))
        candidates = np.stack(
            [2.24 * np.cos(angles), 2.24 * np.sin(angles), np.zeros_like(angles)], axis=1
        )
        powers = srp_phat_map(channels, linear_array, candidates)
        best = candidates[int(np.argmax(powers))]
        true_angle = np.arctan2(source[1], source[0])
        best_angle = np.arctan2(best[1], best[0])
        assert abs(best_angle - true_angle) < np.deg2rad(31)

    def test_map_validation(self, linear_array):
        with pytest.raises(ValueError, match=r"\(n, 3\)"):
            srp_phat_map(np.zeros((3, 100)), linear_array, np.zeros((4, 2)))


class TestMaxLag:
    def test_paper_windows(self):
        assert srp_max_lag_for(get_device("D2")) == 13

    def test_margin(self):
        base = srp_max_lag_for(get_device("D3"))
        assert srp_max_lag_for(get_device("D3"), margin_samples=2) == base + 2

    def test_margin_validation(self):
        with pytest.raises(ValueError):
            srp_max_lag_for(get_device("D3"), margin_samples=-1)


class TestPrecomputedGcc:
    def test_precomputed_matrix_matches_internal(self, linear_array):
        source = np.array([2.0, 3.0, 0.0])
        channels = propagate(linear_array, source)
        pairs = linear_array.pairs()
        lags = steering_pair_lags(linear_array, source, pairs)
        max_lag = 16
        gcc = pairwise_gcc(channels, pairs, max_lag)
        internal = srp_phat_at_delays(channels, pairs, lags, max_lag)
        supplied = srp_phat_at_delays(channels, pairs, lags, max_lag, gcc=gcc)
        assert supplied == internal  # bit-identical, not just close

    def test_precomputed_matrix_skips_channels(self, linear_array):
        """With ``gcc=`` the channel data is never touched, so a junk
        placeholder of the right channel count works."""
        source = np.array([2.0, 3.0, 0.0])
        channels = propagate(linear_array, source)
        pairs = linear_array.pairs()
        lags = steering_pair_lags(linear_array, source, pairs)
        max_lag = 16
        gcc = pairwise_gcc(channels, pairs, max_lag)
        placeholder = np.zeros_like(channels)
        assert srp_phat_at_delays(placeholder, pairs, lags, max_lag, gcc=gcc) == (
            srp_phat_at_delays(channels, pairs, lags, max_lag)
        )

    def test_wrong_shape_rejected(self, linear_array):
        channels = propagate(linear_array, np.array([2.0, 3.0, 0.0]))
        pairs = linear_array.pairs()
        lags = np.zeros(len(pairs), dtype=int)
        bad = np.zeros((len(pairs), 7))
        with pytest.raises(ValueError, match="gcc"):
            srp_phat_at_delays(channels, pairs, lags, max_lag=16, gcc=bad)

    def test_map_uses_shared_gcc(self, linear_array):
        """srp_phat_map computes GCC once; its per-candidate powers must
        equal calling srp_phat_at_delays per candidate from scratch."""
        source = np.array([1.0, 2.0, 0.0])
        channels = propagate(linear_array, source)
        pairs = linear_array.pairs()
        max_lag = srp_max_lag_for(linear_array)
        angles = np.deg2rad(np.arange(0, 181, 45))
        candidates = np.stack(
            [2.0 * np.cos(angles), 2.0 * np.sin(angles), np.zeros_like(angles)], axis=1
        )
        powers = srp_phat_map(channels, linear_array, candidates)
        for c, candidate in enumerate(candidates):
            lags = steering_pair_lags(linear_array, candidate, pairs)
            assert powers[c] == srp_phat_at_delays(channels, pairs, lags, max_lag)
