"""Tests for fractional delay and delay-and-sum beamforming."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrays import MicArray
from repro.dsp import delay_and_sum, fractional_delay, steered_power


class TestFractionalDelay:
    def test_integer_delay_matches_shift(self):
        x = np.zeros(64)
        x[10] = 1.0
        shifted = fractional_delay(x, 5.0)
        assert int(np.argmax(shifted)) == 15

    def test_zero_delay_identity(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(128)
        assert np.allclose(fractional_delay(x, 0.0), x, atol=1e-9)

    def test_half_sample_delay_interpolates(self):
        t = np.arange(256)
        x = np.sin(2 * np.pi * 0.05 * t)
        y = fractional_delay(x, 0.5)
        expected = np.sin(2 * np.pi * 0.05 * (t - 0.5))
        assert np.allclose(y[16:-16], expected[16:-16], atol=3e-2)

    def test_empty_signal(self):
        assert fractional_delay(np.array([]), 3.0).size == 0

    @given(d1=st.floats(-4, 4), d2=st.floats(-4, 4))
    @settings(max_examples=25, deadline=None)
    def test_delays_compose(self, d1, d2):
        """delay(d1) then delay(d2) ~= delay(d1 + d2) away from edges."""
        t = np.arange(512)
        x = np.sin(2 * np.pi * 0.03 * t)
        once = fractional_delay(fractional_delay(x, d1), d2)
        combined = fractional_delay(x, d1 + d2)
        assert np.allclose(once[40:-40], combined[40:-40], atol=5e-2)


class TestDelayAndSum:
    def test_aligned_signals_add_coherently(self):
        rng = np.random.default_rng(2)
        base = rng.standard_normal(2048)
        delays = np.array([0.0, 3.0, 7.0]) / 48_000
        channels = np.stack(
            [fractional_delay(base, d * 48_000) for d in delays]
        )
        summed = delay_and_sum(channels, delays, 48_000)
        # Coherent sum of 3 identical signals: power ~ 9x single.
        gain = np.mean(summed[100:-100] ** 2) / np.mean(base[100:-100] ** 2)
        assert gain > 7.0

    def test_misaligned_delays_lose_power(self):
        rng = np.random.default_rng(2)
        base = rng.standard_normal(2048)
        true_delays = np.array([0.0, 5.0, 10.0]) / 48_000
        channels = np.stack(
            [fractional_delay(base, d * 48_000) for d in true_delays]
        )
        good = delay_and_sum(channels, true_delays, 48_000)
        bad = delay_and_sum(channels, np.zeros(3), 48_000)
        assert np.mean(good**2) > np.mean(bad**2)

    def test_validation(self):
        with pytest.raises(ValueError, match="n_mics"):
            delay_and_sum(np.zeros(16), np.zeros(1), 48_000)
        with pytest.raises(ValueError, match="one delay"):
            delay_and_sum(np.zeros((2, 16)), np.zeros(3), 48_000)


class TestSteeredPower:
    def test_power_highest_toward_source(self):
        positions = np.array([[-0.05, 0, 0], [0.05, 0, 0]])
        array = MicArray("pair", positions, sample_rate=48_000)
        rng = np.random.default_rng(4)
        base = rng.standard_normal(4096)
        source = np.array([3.0, 0.0, 0.0])
        delays = array.steering_delays(source)
        rel = (delays - delays.min()) * 48_000
        channels = np.stack([fractional_delay(base, r) for r in rel])
        on_target = steered_power(channels, array, source)
        off_target = steered_power(channels, array, np.array([-3.0, 0.0, 0.0]))
        assert on_target > off_target
