"""Tests for GCC-PHAT and TDoA estimation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp import estimate_tdoa, gcc_phat, lag_axis, pairwise_gcc


def delayed_pair(delay: int, n: int = 4096, seed: int = 0):
    """White signal and a copy delayed by `delay` samples (b lags a)."""
    rng = np.random.default_rng(seed)
    base = rng.standard_normal(n + abs(delay))
    a = base[abs(delay) :][:n] if delay >= 0 else base[: n]
    b = base[: n] if delay >= 0 else base[abs(delay) :][:n]
    return a, b


class TestGccPhat:
    def test_zero_delay_peak_at_center(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(2048)
        corr = gcc_phat(x, x, max_lag=10)
        assert int(np.argmax(corr)) == 10

    def test_output_length(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(512)
        assert gcc_phat(x, x, max_lag=7).size == 15

    def test_known_integer_delay(self):
        a, b = delayed_pair(5)
        corr = gcc_phat(a, b, max_lag=10)
        assert int(np.argmax(corr)) - 10 == -5

    def test_amplitude_invariance(self):
        """PHAT whitening makes the peak location scale-invariant."""
        a, b = delayed_pair(3)
        corr1 = gcc_phat(a, b, max_lag=8)
        corr2 = gcc_phat(100.0 * a, 0.01 * b, max_lag=8)
        assert int(np.argmax(corr1)) == int(np.argmax(corr2))

    def test_validation(self):
        with pytest.raises(ValueError):
            gcc_phat(np.array([]), np.array([1.0]), 4)
        with pytest.raises(ValueError):
            gcc_phat(np.ones(8), np.ones(8), -1)

    @given(delay=st.integers(-8, 8))
    @settings(max_examples=20, deadline=None)
    def test_recovers_any_integer_delay(self, delay):
        a, b = delayed_pair(delay, seed=42)
        corr = gcc_phat(a, b, max_lag=12)
        assert int(np.argmax(corr)) - 12 == -delay


class TestLagAxis:
    def test_symmetric_in_seconds(self):
        lags = lag_axis(5, 1000)
        assert lags[0] == pytest.approx(-0.005)
        assert lags[-1] == pytest.approx(0.005)
        assert lags[5] == 0.0


class TestEstimateTdoa:
    def test_sign_convention(self):
        """Positive TDoA when the second signal leads."""
        a, b = delayed_pair(4)
        tdoa = estimate_tdoa(a, b, max_lag=10, sample_rate=48_000)
        assert tdoa == pytest.approx(-4 / 48_000)

    def test_noise_robustness(self):
        rng = np.random.default_rng(3)
        a, b = delayed_pair(6, n=8192)
        a = a + 0.5 * rng.standard_normal(a.size)
        b = b + 0.5 * rng.standard_normal(b.size)
        tdoa = estimate_tdoa(a, b, max_lag=10, sample_rate=48_000)
        assert tdoa == pytest.approx(-6 / 48_000, abs=1.1 / 48_000)


class TestPairwiseGcc:
    def test_shape(self):
        rng = np.random.default_rng(0)
        channels = rng.standard_normal((4, 1024))
        out = pairwise_gcc(channels, [(0, 1), (1, 2), (2, 3)], max_lag=9)
        assert out.shape == (3, 19)

    def test_matches_single_pair(self):
        rng = np.random.default_rng(0)
        channels = rng.standard_normal((2, 1024))
        stacked = pairwise_gcc(channels, [(0, 1)], max_lag=6)
        single = gcc_phat(channels[0], channels[1], max_lag=6)
        assert np.allclose(stacked[0], single, atol=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError, match="n_mics"):
            pairwise_gcc(np.zeros(10), [(0, 1)], 4)
        with pytest.raises(ValueError, match="non-empty"):
            pairwise_gcc(np.zeros((2, 10)), [], 4)
