"""Tests for GCC-PHAT and TDoA estimation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp import (
    estimate_tdoa,
    extract_frames,
    gcc_phat,
    lag_axis,
    pairwise_gcc,
    pairwise_gcc_batch,
    pairwise_gcc_frames,
    precision,
)


def delayed_pair(delay: int, n: int = 4096, seed: int = 0):
    """White signal and a copy delayed by `delay` samples (b lags a)."""
    rng = np.random.default_rng(seed)
    base = rng.standard_normal(n + abs(delay))
    a = base[abs(delay) :][:n] if delay >= 0 else base[: n]
    b = base[: n] if delay >= 0 else base[abs(delay) :][:n]
    return a, b


class TestGccPhat:
    def test_zero_delay_peak_at_center(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(2048)
        corr = gcc_phat(x, x, max_lag=10)
        assert int(np.argmax(corr)) == 10

    def test_output_length(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(512)
        assert gcc_phat(x, x, max_lag=7).size == 15

    def test_known_integer_delay(self):
        a, b = delayed_pair(5)
        corr = gcc_phat(a, b, max_lag=10)
        assert int(np.argmax(corr)) - 10 == -5

    def test_amplitude_invariance(self):
        """PHAT whitening makes the peak location scale-invariant."""
        a, b = delayed_pair(3)
        corr1 = gcc_phat(a, b, max_lag=8)
        corr2 = gcc_phat(100.0 * a, 0.01 * b, max_lag=8)
        assert int(np.argmax(corr1)) == int(np.argmax(corr2))

    def test_validation(self):
        with pytest.raises(ValueError):
            gcc_phat(np.array([]), np.array([1.0]), 4)
        with pytest.raises(ValueError):
            gcc_phat(np.ones(8), np.ones(8), -1)

    @given(delay=st.integers(-8, 8))
    @settings(max_examples=20, deadline=None)
    def test_recovers_any_integer_delay(self, delay):
        a, b = delayed_pair(delay, seed=42)
        corr = gcc_phat(a, b, max_lag=12)
        assert int(np.argmax(corr)) - 12 == -delay


class TestLagAxis:
    def test_symmetric_in_seconds(self):
        lags = lag_axis(5, 1000)
        assert lags[0] == pytest.approx(-0.005)
        assert lags[-1] == pytest.approx(0.005)
        assert lags[5] == 0.0


class TestEstimateTdoa:
    def test_sign_convention(self):
        """Positive TDoA when the second signal leads."""
        a, b = delayed_pair(4)
        tdoa = estimate_tdoa(a, b, max_lag=10, sample_rate=48_000)
        assert tdoa == pytest.approx(-4 / 48_000)

    def test_noise_robustness(self):
        rng = np.random.default_rng(3)
        a, b = delayed_pair(6, n=8192)
        a = a + 0.5 * rng.standard_normal(a.size)
        b = b + 0.5 * rng.standard_normal(b.size)
        tdoa = estimate_tdoa(a, b, max_lag=10, sample_rate=48_000)
        assert tdoa == pytest.approx(-6 / 48_000, abs=1.1 / 48_000)


class TestPairwiseGcc:
    def test_shape(self):
        rng = np.random.default_rng(0)
        channels = rng.standard_normal((4, 1024))
        out = pairwise_gcc(channels, [(0, 1), (1, 2), (2, 3)], max_lag=9)
        assert out.shape == (3, 19)

    def test_matches_single_pair(self):
        rng = np.random.default_rng(0)
        channels = rng.standard_normal((2, 1024))
        stacked = pairwise_gcc(channels, [(0, 1)], max_lag=6)
        single = gcc_phat(channels[0], channels[1], max_lag=6)
        assert np.allclose(stacked[0], single, atol=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError, match="n_mics"):
            pairwise_gcc(np.zeros(10), [(0, 1)], 4)
        with pytest.raises(ValueError, match="non-empty"):
            pairwise_gcc(np.zeros((2, 10)), [], 4)


class TestWideWindowRegression:
    """The FFT must be sized so the requested lag window always fits.

    Sizing by signal length alone silently clamped ``max_lag`` to
    ``n_fft // 2 - 1`` for short signals, returning a narrower window
    than requested and shifting the centre ``estimate_tdoa`` assumed.
    """

    def test_window_never_clamped_for_short_signals(self):
        rng = np.random.default_rng(7)
        a = rng.standard_normal(30)
        corr = gcc_phat(a, a, max_lag=40)
        assert corr.size == 2 * 40 + 1
        assert int(np.argmax(corr)) == 40

    def test_short_signal_delay_recovered_with_wide_window(self):
        # max_lag 40 exceeds the old clamp (31 for 30-sample signals).
        a, b = delayed_pair(10, n=30, seed=11)
        corr = gcc_phat(a, b, max_lag=40)
        assert corr.size == 81
        assert int(np.argmax(corr)) - 40 == -10

    def test_estimate_tdoa_uses_requested_lag(self):
        a, b = delayed_pair(10, n=30, seed=11)
        tdoa = estimate_tdoa(a, b, max_lag=40, sample_rate=48_000)
        assert tdoa == pytest.approx(-10 / 48_000)

    def test_pairwise_window_never_clamped(self):
        rng = np.random.default_rng(9)
        channels = rng.standard_normal((2, 30))
        out = pairwise_gcc(channels, [(0, 1)], max_lag=40)
        assert out.shape == (1, 81)
        single = gcc_phat(channels[0], channels[1], max_lag=40)
        assert np.array_equal(out[0], single)


class TestSignConventionAgainstGeometry:
    """Pin lag = t_a - t_b and its agreement with steering_pair_lags."""

    def test_positive_lag_means_a_lags_b(self):
        # a(t) = b(t - 7): wavefront reached b first, a lags by 7.
        rng = np.random.default_rng(5)
        base = rng.standard_normal(4096)
        a, b = np.roll(base, 7), base
        corr = gcc_phat(a, b, max_lag=12)
        assert int(np.argmax(corr)) - 12 == 7
        assert estimate_tdoa(a, b, max_lag=12, sample_rate=48_000) == pytest.approx(
            7 / 48_000
        )

    def test_agrees_with_steering_pair_lags(self):
        from repro.arrays.geometry import SPEED_OF_SOUND, MicArray
        from repro.dsp.srp import steering_pair_lags

        fs = 48_000
        shift = 14  # integer-sample inter-mic delay by construction
        spacing = shift * SPEED_OF_SOUND / fs
        array = MicArray(
            name="pair",
            positions=[(-spacing / 2, 0.0, 0.0), (spacing / 2, 0.0, 0.0)],
            sample_rate=fs,
        )
        source = np.array([10.0, 0.0, 0.0])  # on-axis: exact sample delay
        expected = steering_pair_lags(array, source, [(0, 1)])
        assert expected[0] == shift

        # Mic 1 is nearer the source, so mic 0's channel is the delayed
        # copy; GCC must recover the same positive lag.
        rng = np.random.default_rng(6)
        base = rng.standard_normal(8192)
        channels = np.stack([np.roll(base, shift), base])
        tdoa = estimate_tdoa(channels[0], channels[1], max_lag=20, sample_rate=fs)
        assert round(tdoa * fs) == expected[0]


class TestPairwiseGccBatch:
    def test_matches_serial_bitwise(self):
        rng = np.random.default_rng(2)
        pairs = [(0, 1), (0, 2), (1, 2)]
        batch = [rng.standard_normal((3, n)) for n in (1024, 1024, 900)]
        stacked = pairwise_gcc_batch(batch, pairs, max_lag=9)
        assert stacked.shape == (3, 3, 19)
        for got, channels in zip(stacked, batch):
            assert np.array_equal(got, pairwise_gcc(channels, pairs, max_lag=9))

    def test_mixed_fft_lengths_grouped(self):
        """Captures whose lengths quantize to different FFT sizes."""
        rng = np.random.default_rng(3)
        pairs = [(0, 1)]
        batch = [rng.standard_normal((2, n)) for n in (500, 2000, 600, 1500)]
        stacked = pairwise_gcc_batch(batch, pairs, max_lag=6)
        for got, channels in zip(stacked, batch):
            assert np.array_equal(got, pairwise_gcc(channels, pairs, max_lag=6))

    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            pairwise_gcc_batch([], [(0, 1)], 4)
        with pytest.raises(ValueError, match="n_mics"):
            pairwise_gcc_batch([np.zeros((2, 64)), np.zeros((3, 64))], [(0, 2)], 4)


class TestExtractFrames:
    def test_shape_and_synchronized_slices(self):
        rng = np.random.default_rng(0)
        channels = rng.standard_normal((3, 1000))
        frames = extract_frames(channels, frame_length=256, hop_length=128)
        assert frames.shape[1:] == (3, 256)
        # Frame t of every mic covers the same time slice.
        assert np.array_equal(frames[0], channels[:, :256])
        assert np.array_equal(frames[1], channels[:, 128:384])

    def test_pad_keeps_tail_and_nopad_drops_it(self):
        channels = np.arange(10, dtype=float).reshape(1, 10)
        padded = extract_frames(channels, frame_length=4, hop_length=3)
        assert padded.shape[0] == 3
        assert np.array_equal(padded[-1, 0], [6.0, 7.0, 8.0, 9.0])
        exact = extract_frames(channels, frame_length=4, hop_length=3, pad=False)
        assert exact.shape[0] == 3  # 10 samples fit 3 complete frames exactly
        short = extract_frames(channels[:, :3], frame_length=4, hop_length=3, pad=False)
        assert short.shape == (0, 1, 4)

    def test_validation(self):
        with pytest.raises(ValueError, match=">= 1"):
            extract_frames(np.zeros((2, 64)), 0, 1)
        with pytest.raises(ValueError, match="n_mics"):
            extract_frames(np.zeros(64), 8, 4)


class TestPairwiseGccFrames:
    def test_matches_per_frame_pairwise_gcc(self):
        """Same transforms, re-grouped: each frame's window matches the
        serial path to within a ulp (numpy's elementwise kernels may
        round the whitening differently across batch shapes, so exact
        bit-equality is not guaranteed here — unlike the float64
        evaluate/evaluate_batch invariant pinned by the runtime suite)."""
        rng = np.random.default_rng(4)
        channels = rng.standard_normal((3, 1500))
        pairs = [(0, 1), (0, 2), (1, 2)]
        framed = pairwise_gcc_frames(
            channels, pairs, max_lag=9, frame_length=512, hop_length=256
        )
        frames = extract_frames(channels, 512, 256)
        assert framed.shape == (frames.shape[0], 3, 19)
        for t in range(frames.shape[0]):
            serial = pairwise_gcc(frames[t], pairs, max_lag=9)
            np.testing.assert_allclose(framed[t], serial, rtol=1e-9, atol=1e-12)

    def test_short_capture_single_padded_frame(self):
        rng = np.random.default_rng(5)
        channels = rng.standard_normal((2, 100))
        framed = pairwise_gcc_frames(
            channels, [(0, 1)], max_lag=6, frame_length=256, hop_length=128
        )
        assert framed.shape == (1, 1, 13)
        padded = np.zeros((2, 256))
        padded[:, :100] = channels
        np.testing.assert_allclose(
            framed[0], pairwise_gcc(padded, [(0, 1)], max_lag=6), rtol=1e-9, atol=1e-12
        )

    def test_nopad_empty_result(self):
        out = pairwise_gcc_frames(
            np.zeros((2, 10)), [(0, 1)], max_lag=4, frame_length=64,
            hop_length=32, pad=False,
        )
        assert out.shape == (0, 1, 9)

    def test_float32_dtype_and_parity(self):
        rng = np.random.default_rng(6)
        channels = rng.standard_normal((2, 1024))
        pairs = [(0, 1)]
        f64 = pairwise_gcc_frames(channels, pairs, 8, 256, 128)
        f32 = pairwise_gcc_frames(channels, pairs, 8, 256, 128, dtype=np.float32)
        assert f64.dtype == np.float64 and f32.dtype == np.float32
        assert np.allclose(f32, f64, atol=1e-4)


class TestDtypeThreading:
    def test_explicit_dtype_wins(self):
        rng = np.random.default_rng(7)
        channels = rng.standard_normal((2, 512))
        out = pairwise_gcc(channels, [(0, 1)], 6, dtype="float32")
        assert out.dtype == np.float32

    def test_precision_scope_applies(self):
        rng = np.random.default_rng(8)
        a, b = rng.standard_normal(512), rng.standard_normal(512)
        with precision("float32"):
            assert gcc_phat(a, b, 8).dtype == np.float32
        assert gcc_phat(a, b, 8).dtype == np.float64

    def test_float32_peak_matches_float64(self):
        a, b = delayed_pair(5, n=2048)
        c64 = gcc_phat(a, b, max_lag=10)
        c32 = gcc_phat(a, b, max_lag=10, dtype=np.float32)
        assert int(np.argmax(c32)) == int(np.argmax(c64))
        assert np.allclose(c32, c64, atol=1e-4)

    def test_batch_float32_matches_serial_float32(self):
        rng = np.random.default_rng(9)
        pairs = [(0, 1), (1, 2)]
        batch = [rng.standard_normal((3, n)) for n in (700, 900)]
        stacked = pairwise_gcc_batch(batch, pairs, 7, dtype=np.float32)
        assert stacked.dtype == np.float32
        for got, channels in zip(stacked, batch):
            assert np.array_equal(got, pairwise_gcc(channels, pairs, 7, dtype=np.float32))


class TestTruncationWarning:
    """extract_frames(pad=False) must not drop a tail silently."""

    @pytest.fixture(autouse=True)
    def fresh_warning_state(self, monkeypatch):
        from repro.dsp import gcc
        from repro.obs import REGISTRY, set_obs_enabled

        monkeypatch.setattr(gcc, "_TRUNCATION_WARNED", False)
        REGISTRY.reset()
        set_obs_enabled(True)
        yield
        set_obs_enabled(False)
        REGISTRY.reset()

    def test_dropped_tail_warns_once_and_counts(self):
        import warnings

        from repro.obs import REGISTRY

        x = np.zeros((2, 1024 + 100))
        with pytest.warns(RuntimeWarning, match="dropped 100 trailing samples"):
            frames = extract_frames(x, 1024, 1024, pad=False)
        assert frames.shape[0] == 1
        # Warned once per process; the counter keeps counting.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            extract_frames(x, 1024, 1024, pad=False)
        assert not [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert REGISTRY.counter("dsp.frames.truncated").value == 200.0

    def test_short_signal_counts_every_sample(self):
        from repro.obs import REGISTRY

        with pytest.warns(RuntimeWarning):
            frames = extract_frames(np.zeros((2, 300)), 1024, 1024, pad=False)
        assert frames.shape[0] == 0
        assert REGISTRY.counter("dsp.frames.truncated").value == 300.0

    def test_exact_fit_never_warns(self, recwarn):
        extract_frames(np.zeros((2, 2048)), 1024, 1024, pad=False)
        assert not [w for w in recwarn.list if w.category is RuntimeWarning]

    def test_pad_true_never_warns(self, recwarn):
        extract_frames(np.zeros((2, 1100)), 1024, 1024, pad=True)
        assert not [w for w in recwarn.list if w.category is RuntimeWarning]
