"""Tests for resampling and the liveness input normalization."""

import numpy as np
import pytest

from repro.dsp import resample, to_liveness_input


def tone(freq, fs, seconds=0.25):
    t = np.arange(int(fs * seconds)) / fs
    return np.sin(2 * np.pi * freq * t)


class TestResample:
    def test_length_scales(self):
        x = tone(440, 48_000)
        y = resample(x, 48_000, 16_000)
        assert y.size == pytest.approx(x.size / 3, abs=2)

    def test_tone_frequency_preserved(self):
        x = tone(1000, 48_000, seconds=0.5)
        y = resample(x, 48_000, 16_000)
        spectrum = np.abs(np.fft.rfft(y))
        freqs = np.fft.rfftfreq(y.size, 1 / 16_000)
        assert freqs[int(np.argmax(spectrum))] == pytest.approx(1000, abs=10)

    def test_identity_when_rates_equal(self):
        x = tone(440, 16_000)
        assert np.array_equal(resample(x, 16_000, 16_000), x)

    def test_aliasing_removed(self):
        """Content above the target Nyquist must not fold down."""
        x = tone(10_000, 48_000, seconds=0.5)
        y = resample(x, 48_000, 16_000)
        assert np.sqrt(np.mean(y**2)) < 0.05

    def test_multichannel(self):
        x = np.stack([tone(440, 48_000), tone(880, 48_000)])
        y = resample(x, 48_000, 16_000)
        assert y.shape[0] == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            resample(np.ones(10), 0, 16_000)


class TestLivenessInput:
    def test_normalized(self):
        x = 3.0 + 5.0 * tone(500, 48_000)
        y = to_liveness_input(x, 48_000)
        assert abs(y.mean()) < 1e-9
        assert y.std() == pytest.approx(1.0, abs=1e-6)

    def test_silent_input_stays_finite(self):
        y = to_liveness_input(np.zeros(4800), 48_000)
        assert np.all(np.isfinite(y))
