"""Tests for analysis windows and framing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp import frame_signal, get_window, hamming, hann


class TestWindows:
    def test_hann_endpoints_and_peak(self):
        w = hann(64)
        assert w[0] == pytest.approx(0.0)
        assert w.max() <= 1.0

    def test_hamming_floor(self):
        w = hamming(64)
        assert w.min() == pytest.approx(0.08, abs=1e-9)

    def test_get_window_names(self):
        assert np.allclose(get_window("rect", 8), 1.0)
        assert np.allclose(get_window("hann", 8), hann(8))

    def test_get_window_unknown(self):
        with pytest.raises(ValueError, match="unknown window"):
            get_window("kaiser", 8)

    def test_length_validation(self):
        with pytest.raises(ValueError):
            hann(0)

    def test_hann_cola_at_half_overlap(self):
        """Periodic Hann windows at 50% hop sum to a constant (COLA)."""
        w = hann(64)
        total = w[:32] + w[32:]
        assert np.allclose(total, total[0])


class TestFraming:
    def test_shapes(self):
        frames = frame_signal(np.arange(100.0), 30, 10)
        assert frames.shape[1] == 30

    def test_hop_offsets(self):
        frames = frame_signal(np.arange(100.0), 20, 10, pad=False)
        assert frames[1, 0] == 10.0

    def test_no_pad_drops_tail(self):
        frames = frame_signal(np.arange(25.0), 10, 10, pad=False)
        assert frames.shape[0] == 2

    def test_pad_keeps_tail(self):
        frames = frame_signal(np.arange(25.0), 10, 10, pad=True)
        assert frames.shape[0] == 3
        assert frames[-1, -1] == 0.0

    def test_short_signal_no_pad(self):
        frames = frame_signal(np.arange(5.0), 10, 5, pad=False)
        assert frames.shape[0] == 0

    def test_empty_signal(self):
        assert frame_signal(np.array([]), 10, 5).shape == (0, 10)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            frame_signal(np.zeros((3, 3)), 2, 1)

    def test_rejects_bad_lengths(self):
        with pytest.raises(ValueError):
            frame_signal(np.zeros(10), 0, 1)

    @given(
        n=st.integers(1, 200),
        frame=st.integers(1, 50),
        hop=st.integers(1, 50),
    )
    @settings(max_examples=50, deadline=None)
    def test_padded_framing_covers_all_samples(self, n, frame, hop):
        """Every input sample appears at its expected frame position."""
        x = np.arange(float(n))
        frames = frame_signal(x, frame, hop, pad=True)
        n_frames = frames.shape[0]
        assert (n_frames - 1) * hop + frame >= n
        for k in range(min(n_frames, 5)):
            start = k * hop
            expected = x[start : start + frame]
            assert np.allclose(frames[k, : expected.size], expected)
