"""Tests for SRP-PHAT azimuth estimation."""

import numpy as np
import pytest

from repro.acoustics import RirConfig, Scene, SpeakerPose, LAB_PLACEMENTS, lab_room, render_capture
from repro.arrays import get_device
from repro.dsp import angular_error_deg, estimate_azimuth


class TestAngularError:
    def test_simple(self):
        assert angular_error_deg(10.0, 30.0) == 20.0

    def test_wraparound(self):
        assert angular_error_deg(-175.0, 175.0) == 10.0
        assert angular_error_deg(180.0, -180.0) == 0.0


class TestEstimateAzimuth:
    @pytest.mark.parametrize("radial", [-15.0, 0.0, 15.0])
    def test_finds_speaker_direction(self, radial, speaker):
        device = get_device("D2")
        scene = Scene(
            room=lab_room(),
            device=device,
            placement=LAB_PLACEMENTS["A"],
            pose=SpeakerPose(distance_m=2.0, radial_deg=radial),
        )
        rng = np.random.default_rng(int(radial) + 50)
        capture = render_capture(
            scene,
            speaker.emit("computer", 48_000, rng),
            rng=rng,
            rir_config=RirConfig(max_order=1),
        )
        # Ground truth azimuth of the speaker as seen from the array.
        direction = scene.source_position - scene.placement.position
        truth = np.degrees(np.arctan2(direction[1], direction[0]))
        estimate = estimate_azimuth(capture.channels, device)
        assert angular_error_deg(estimate.azimuth_deg, truth) <= 15.0

    def test_confidence_above_one_for_real_source(self, speaker):
        device = get_device("D2")
        scene = Scene(
            room=lab_room(),
            device=device,
            placement=LAB_PLACEMENTS["A"],
            pose=SpeakerPose(distance_m=2.0),
        )
        rng = np.random.default_rng(7)
        capture = render_capture(
            scene, speaker.emit("computer", 48_000, rng), rng=rng,
            rir_config=RirConfig(max_order=1),
        )
        estimate = estimate_azimuth(capture.channels, device)
        assert estimate.confidence() > 1.1

    def test_profile_shape(self, speaker):
        device = get_device("D3")
        scene = Scene(
            room=lab_room(),
            device=device,
            placement=LAB_PLACEMENTS["A"],
            pose=SpeakerPose(distance_m=1.5),
        )
        rng = np.random.default_rng(8)
        capture = render_capture(
            scene, speaker.emit("computer", 48_000, rng), rng=rng,
            rir_config=RirConfig(max_order=1),
        )
        estimate = estimate_azimuth(capture.channels, device, resolution_deg=10.0)
        assert estimate.grid_deg.size == 36
        assert estimate.profile.size == 36

    def test_validation(self):
        device = get_device("D3")
        with pytest.raises(ValueError):
            estimate_azimuth(np.zeros((4, 4800)), device, resolution_deg=0.0)
        with pytest.raises(ValueError):
            estimate_azimuth(np.zeros((4, 4800)), device, assumed_range_m=-1.0)
