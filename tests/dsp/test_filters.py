"""Tests for the Butterworth front-end and the octave filterbank."""

import numpy as np
import pytest

from repro.dsp import (
    BandpassFilter,
    band_split,
    headtalk_bandpass,
    highpass,
    lowpass,
    octave_band_edges,
)


def tone(freq: float, fs: int = 48_000, seconds: float = 0.2) -> np.ndarray:
    t = np.arange(int(fs * seconds)) / fs
    return np.sin(2 * np.pi * freq * t)


def rms(x: np.ndarray) -> float:
    return float(np.sqrt(np.mean(x**2)))


class TestBandpass:
    def test_passband_preserved(self):
        bp = BandpassFilter(100, 16_000, 48_000, order=5)
        out = bp.apply(tone(1000))
        assert rms(out) == pytest.approx(rms(tone(1000)), rel=0.05)

    def test_stopband_attenuated(self):
        bp = BandpassFilter(100, 16_000, 48_000, order=5)
        assert rms(bp.apply(tone(20))) < 0.05 * rms(tone(20))
        assert rms(bp.apply(tone(22_000))) < 0.05 * rms(tone(22_000))

    def test_multichannel_last_axis(self):
        bp = BandpassFilter(100, 16_000, 48_000)
        stacked = np.stack([tone(1000), tone(20)])
        out = bp.apply(stacked)
        assert out.shape == stacked.shape
        assert rms(out[0]) > 10 * rms(out[1])

    def test_short_signal_falls_back_to_causal(self):
        bp = BandpassFilter(100, 16_000, 48_000)
        out = bp.apply(np.ones(8))
        assert out.shape == (8,)

    def test_validation(self):
        with pytest.raises(ValueError):
            BandpassFilter(0, 100, 48_000)
        with pytest.raises(ValueError):
            BandpassFilter(100, 30_000, 48_000)
        with pytest.raises(ValueError):
            BandpassFilter(100, 1000, 48_000, order=0)

    def test_headtalk_bandpass_matches_paper(self):
        bp = headtalk_bandpass(48_000)
        assert bp.low_hz == 100.0
        assert bp.high_hz == 16_000.0
        assert bp.order == 5

    def test_headtalk_bandpass_low_rate(self):
        bp = headtalk_bandpass(16_000)
        assert bp.high_hz < 8_000


class TestHighLowPass:
    def test_lowpass_kills_highs(self):
        assert rms(lowpass(tone(8000), 1000, 48_000)) < 0.02

    def test_highpass_kills_lows(self):
        assert rms(highpass(tone(100), 2000, 48_000)) < 0.02

    def test_cutoff_validation(self):
        with pytest.raises(ValueError):
            lowpass(tone(100), 0, 48_000)
        with pytest.raises(ValueError):
            highpass(tone(100), 25_000, 48_000)


class TestOctaveBands:
    def test_bands_double(self):
        edges = octave_band_edges(48_000, low_hz=125, n_bands=6)
        for lo, hi in edges:
            assert hi == pytest.approx(2 * lo, rel=0.02) or hi >= 0.9 * 24_000 * 0.98

    def test_bands_stop_below_nyquist(self):
        edges = octave_band_edges(16_000, low_hz=125, n_bands=12)
        assert edges[-1][1] <= 8000

    def test_validation(self):
        with pytest.raises(ValueError):
            octave_band_edges(48_000, n_bands=0)

    def test_band_split_energy_partition(self):
        """Band components approximately reconstruct the original."""
        fs = 48_000
        rng = np.random.default_rng(0)
        x = rng.standard_normal(4096)
        edges = octave_band_edges(fs, 125, 7)
        parts = band_split(x, fs, edges)
        assert len(parts) == len(edges)
        recon = np.sum(parts, axis=0)
        # Mid-band content should survive the split+sum round trip.
        mid = lowpass(highpass(x, 300, fs), 6000, fs)
        mid_recon = lowpass(highpass(recon, 300, fs), 6000, fs)
        correlation = np.corrcoef(mid, mid_recon)[0, 1]
        assert correlation > 0.9

    def test_band_split_isolates_tones(self):
        fs = 48_000
        edges = octave_band_edges(fs, 125, 7)
        x = tone(1400, fs)  # falls in the 1-2 kHz band
        parts = band_split(x, fs, edges)
        energies = [rms(p) for p in parts]
        best = int(np.argmax(energies))
        lo, hi = edges[best]
        assert lo <= 1400 <= hi

    def test_single_band_passthrough(self):
        x = tone(1000)
        parts = band_split(x, 48_000, [(100.0, 16_000.0)])
        assert np.allclose(parts[0], x)
