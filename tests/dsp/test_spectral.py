"""Tests for band statistics and the speech-directivity features."""

import numpy as np
import pytest

from repro.dsp import (
    HIGH_BAND,
    LOW_BAND,
    band_mask,
    band_mean_magnitude,
    high_low_band_ratio,
    low_band_chunk_stats,
    mean_power_spectrum,
    signal_to_noise_ratio_db,
    spectral_contrast,
)


def tone_mix(freqs_amps, fs=48_000, seconds=0.4):
    t = np.arange(int(fs * seconds)) / fs
    return sum(a * np.sin(2 * np.pi * f * t) for f, a in freqs_amps)


class TestBandMask:
    def test_inclusive_exclusive(self):
        freqs = np.array([99.0, 100.0, 399.0, 400.0])
        mask = band_mask(freqs, (100.0, 400.0))
        assert mask.tolist() == [False, True, True, False]

    def test_validation(self):
        with pytest.raises(ValueError):
            band_mask(np.array([1.0]), (400.0, 100.0))


class TestHlbr:
    def test_bands_match_paper(self):
        assert LOW_BAND == (100.0, 400.0)
        assert HIGH_BAND == (500.0, 4000.0)

    def test_ratio_orders_bright_vs_dark(self):
        bright = tone_mix([(2000, 1.0), (200, 0.1)])
        dark = tone_mix([(2000, 0.1), (200, 1.0)])
        ratios = []
        for x in (bright, dark):
            freqs, power = mean_power_spectrum(x, 48_000)
            ratios.append(high_low_band_ratio(freqs, power))
        assert ratios[0] > 5 * ratios[1]

    def test_low_dominant_signal_below_one(self):
        x = tone_mix([(2000, 0.1), (200, 1.0)])
        freqs, power = mean_power_spectrum(x, 48_000)
        assert high_low_band_ratio(freqs, power) < 1.0

    def test_empty_band_returns_zero_mean(self):
        freqs = np.linspace(0, 50, 10)
        assert band_mean_magnitude(freqs, np.ones(10), (100.0, 200.0)) == 0.0


class TestLowBandChunks:
    def test_dimension(self):
        x = tone_mix([(250, 1.0)])
        freqs, power = mean_power_spectrum(x, 48_000)
        stats = low_band_chunk_stats(freqs, power, n_chunks=20)
        assert stats.shape == (60,)

    def test_energy_lands_near_right_chunk(self):
        x = tone_mix([(115, 1.0)])
        freqs, power = mean_power_spectrum(x, 48_000)
        stats = low_band_chunk_stats(freqs, power, n_chunks=20)
        means = stats[0::3]
        chunk_width = (400.0 - 100.0) / 20
        center = 100.0 + (int(np.argmax(means)) + 0.5) * chunk_width
        # FFT bin resolution (~47 Hz) limits how precisely the tone maps.
        assert abs(center - 115.0) < 60.0

    def test_validation(self):
        with pytest.raises(ValueError):
            low_band_chunk_stats(np.array([1.0]), np.array([1.0]), n_chunks=0)


class TestSpectralContrast:
    def test_bright_vs_dark_signal(self):
        rng = np.random.default_rng(0)
        bright = rng.standard_normal(48_000)
        dark = tone_mix([(300, 1.0), (600, 0.5)], seconds=1.0)
        c_bright = spectral_contrast(bright, 48_000)
        c_dark = spectral_contrast(dark, 48_000)
        assert c_bright.high_fraction > c_dark.high_fraction

    def test_decay_slope_sign(self):
        """A 1/f-ish spectrum must yield a negative dB/octave slope."""
        rng = np.random.default_rng(1)
        n = 48_000
        spectrum = np.fft.rfft(rng.standard_normal(n))
        freqs = np.fft.rfftfreq(n, 1 / 48_000)
        shaped = np.fft.irfft(spectrum / np.maximum(freqs, 1.0), n)
        contrast = spectral_contrast(shaped, 48_000)
        assert contrast.decay_db_per_octave < -3.0


class TestSnr:
    def test_known_ratio(self):
        signal = np.ones(1000)
        noise = np.full(1000, 0.1)
        assert signal_to_noise_ratio_db(signal, noise) == pytest.approx(20.0)

    def test_degenerate_cases(self):
        assert signal_to_noise_ratio_db(np.ones(10), np.zeros(10)) == float("inf")
        assert signal_to_noise_ratio_db(np.zeros(10), np.ones(10)) == float("-inf")
