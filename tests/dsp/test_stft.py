"""Tests for short-time spectral analysis."""

import numpy as np
import pytest

from repro.dsp import log_mel_like_features, mean_power_spectrum, power_spectrogram, stft


def tone(freq, fs=16_000, seconds=0.5):
    t = np.arange(int(fs * seconds)) / fs
    return np.sin(2 * np.pi * freq * t)


class TestStft:
    def test_shape(self):
        spec = stft(np.zeros(4096), frame_length=1024, hop_length=512)
        assert spec.shape[1] == 513

    def test_tone_bin(self):
        fs = 16_000
        x = tone(1000, fs)
        freqs, power = mean_power_spectrum(x, fs, frame_length=1024)
        peak_freq = freqs[int(np.argmax(power))]
        assert peak_freq == pytest.approx(1000, abs=fs / 1024)

    def test_power_nonnegative(self):
        rng = np.random.default_rng(0)
        power = power_spectrogram(rng.standard_normal(4096))
        assert np.all(power >= 0)

    def test_too_short_signal_raises(self):
        with pytest.raises(ValueError, match="too short"):
            # empty signal -> zero frames
            mean_power_spectrum(np.array([]), 16_000)

    def test_parseval_energy_scaling(self):
        """Spectral energy tracks time-domain energy across amplitudes."""
        x = tone(500)
        _, p1 = mean_power_spectrum(x, 16_000)
        _, p2 = mean_power_spectrum(2.0 * x, 16_000)
        assert p2.sum() == pytest.approx(4.0 * p1.sum(), rel=1e-6)


class TestLogMel:
    def test_shape(self):
        feats = log_mel_like_features(tone(800), 16_000, n_bands=40)
        assert feats.shape[1] == 40
        assert feats.shape[0] > 5

    def test_tone_hits_expected_band(self):
        feats = log_mel_like_features(tone(200), 16_000, n_bands=40)
        low_band_energy = feats[:, :10].max()
        high_band_energy = feats[:, 30:].max()
        assert low_band_energy > high_band_energy

    def test_bright_signal_fills_high_bands(self):
        rng = np.random.default_rng(0)
        feats = log_mel_like_features(rng.standard_normal(8000), 16_000)
        assert feats[:, -5:].mean() > -15

    def test_validation(self):
        with pytest.raises(ValueError):
            log_mel_like_features(tone(200), 16_000, n_bands=1)
        with pytest.raises(ValueError):
            log_mel_like_features(tone(200), 16_000, fmin=9000, fmax=8000)
