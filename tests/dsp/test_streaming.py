"""FrameFeed / GccAccumulator: chunked streams equal whole captures."""

import numpy as np
import pytest

from repro.dsp import (
    FrameFeed,
    GccAccumulator,
    extract_frames,
    pairwise_gcc_frames,
)

# Reference calls slice whole signals with pad=False, so the trailing
# partial frame is dropped on purpose; the one-time truncation warning
# is expected here, not a defect.
pytestmark = pytest.mark.filterwarnings("ignore:extract_frames")

RNG = np.random.default_rng(7)


def _signal(n_mics=4, n_samples=20_000):
    return RNG.standard_normal((n_mics, n_samples))


def _chunks(x, sizes):
    start = 0
    while start < x.shape[1]:
        size = sizes[0] if isinstance(sizes, list) else sizes
        if isinstance(sizes, list):
            sizes = sizes[1:] + sizes[:1]
        yield x[:, start : start + size]
        start += size


class TestFrameFeed:
    @pytest.mark.parametrize("chunk", [2048, 1000, 333, 4096, 1])
    def test_frames_invariant_to_chunking(self, chunk):
        x = _signal(2, 9_000)
        frame, hop = 1024, 512
        whole = extract_frames(x, frame, hop, pad=False)
        feed = FrameFeed(2, frame, hop)
        streamed = [f for c in _chunks(x, chunk) for f in feed.push(c)]
        assert len(streamed) == whole.shape[0]
        assert np.array_equal(np.stack(streamed), whole)

    def test_irregular_chunking_matches_too(self):
        x = _signal(3, 12_345)
        frame, hop = 2048, 2048
        whole = extract_frames(x, frame, hop, pad=False)
        feed = FrameFeed(3, frame, hop)
        streamed = [f for c in _chunks(x, [700, 1, 5000, 123]) for f in feed.push(c)]
        assert np.array_equal(np.stack(streamed), whole)

    def test_hop_larger_than_frame_skips_the_gap(self):
        x = _signal(2, 10_000)
        frame, hop = 512, 1500
        whole = extract_frames(x, frame, hop, pad=False)
        feed = FrameFeed(2, frame, hop)
        streamed = [f for c in _chunks(x, 600) for f in feed.push(c)]
        assert np.array_equal(np.stack(streamed), whole)

    def test_counts_and_carry(self):
        feed = FrameFeed(2, 1024, 1024)
        assert feed.push(np.zeros((2, 1000))).shape[0] == 0
        assert feed.buffered == 1000
        assert feed.push(np.zeros((2, 24))).shape[0] == 1
        assert feed.buffered == 0
        assert feed.samples_seen == 1024
        assert feed.frames_emitted == 1

    def test_wrong_channel_count_rejected(self):
        feed = FrameFeed(4, 1024, 1024)
        with pytest.raises(ValueError):
            feed.push(np.zeros((2, 1024)))


class TestGccAccumulator:
    PAIRS = [(0, 1), (0, 2), (1, 3)]
    MAX_LAG = 16

    def test_mean_matches_whole_capture_gcc(self):
        x = _signal(4, 18_000)
        frame, hop = 2048, 2048
        whole = pairwise_gcc_frames(x, self.PAIRS, self.MAX_LAG, frame, hop, pad=False)
        acc = GccAccumulator(4, self.PAIRS, self.MAX_LAG, frame, hop)
        for chunk in _chunks(x, 1000):
            acc.push(chunk)
        assert acc.n_frames == whole.shape[0]
        assert np.allclose(acc.mean_gcc(), whole.mean(axis=0), rtol=1e-9, atol=1e-12)

    def test_srp_argmax_is_chunking_invariant(self):
        x = _signal(4, 18_000)
        lags = set()
        for chunk in (2048, 700, 5000):
            acc = GccAccumulator(4, self.PAIRS, self.MAX_LAG, 2048, 2048)
            for piece in _chunks(x, chunk):
                acc.push(piece)
            lags.add(acc.srp_argmax_lag())
        assert len(lags) == 1

    def test_push_reports_new_frames(self):
        acc = GccAccumulator(2, [(0, 1)], 8, 1024, 1024)
        assert acc.push(np.zeros((2, 1000))) == 0
        assert acc.push(RNG.standard_normal((2, 1072))) == 2
        assert acc.n_frames == 2
        assert acc.samples_seen == 2072

    def test_tdoa_lags_shape(self):
        acc = GccAccumulator(4, self.PAIRS, self.MAX_LAG, 1024, 1024)
        acc.push(RNG.standard_normal((4, 4096)))
        assert acc.tdoa_lags().shape == (len(self.PAIRS),)
        assert acc.srp().shape == (2 * self.MAX_LAG + 1,)

    def test_empty_accumulator_is_safe(self):
        acc = GccAccumulator(2, [(0, 1)], 8, 1024, 1024)
        assert acc.n_frames == 0
        assert np.array_equal(acc.mean_gcc(), np.zeros((1, 17)))
        assert acc.srp_argmax_lag() == -8  # argmax of zeros is index 0

    def test_invalid_pairs_rejected(self):
        with pytest.raises(ValueError):
            GccAccumulator(2, [(0, 5)], 8, 1024, 1024)
