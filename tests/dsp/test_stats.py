"""Tests for statistical summaries and peak picking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as sps

from repro.dsp import (
    find_peaks,
    kurtosis,
    mean_absolute_deviation,
    skewness,
    summary_vector,
    top_k_peaks,
)

finite_arrays = st.lists(
    st.floats(-1e6, 1e6, allow_nan=False), min_size=3, max_size=64
).map(np.asarray)


class TestMoments:
    def test_gaussian_kurtosis_near_zero(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(200_000)
        assert abs(kurtosis(x)) < 0.05

    def test_symmetric_skewness_zero(self):
        x = np.array([-2.0, -1.0, 0.0, 1.0, 2.0])
        assert skewness(x) == pytest.approx(0.0, abs=1e-12)

    def test_right_skewed_positive(self):
        x = np.array([0.0, 0.0, 0.0, 0.0, 10.0])
        assert skewness(x) > 0

    def test_degenerate_inputs(self):
        assert kurtosis(np.array([5.0])) == 0.0
        assert skewness(np.ones(10)) == 0.0
        assert mean_absolute_deviation(np.array([])) == 0.0

    @given(finite_arrays)
    @settings(max_examples=50, deadline=None)
    def test_matches_scipy(self, x):
        if np.std(x) < 1e-6:
            return
        assert kurtosis(x) == pytest.approx(sps.kurtosis(x), rel=1e-6, abs=1e-6)
        assert skewness(x) == pytest.approx(sps.skew(x), rel=1e-6, abs=1e-6)

    def test_mad_known_value(self):
        assert mean_absolute_deviation(np.array([1.0, 3.0])) == pytest.approx(1.0)


class TestSummaryVector:
    def test_order_and_length(self):
        x = np.array([1.0, 5.0, 2.0, 4.0])
        vec = summary_vector(x)
        assert vec.shape == (5,)
        assert vec[2] == 5.0  # max in slot 2
        assert vec[4] == pytest.approx(np.std(x))

    @given(finite_arrays)
    @settings(max_examples=30, deadline=None)
    def test_always_finite(self, x):
        assert np.all(np.isfinite(summary_vector(x)))


class TestPeaks:
    def test_finds_interior_maxima(self):
        x = np.array([0.0, 3.0, 1.0, 5.0, 2.0])
        assert find_peaks(x).tolist() == [1, 3]

    def test_no_peaks_in_monotone(self):
        assert find_peaks(np.arange(10.0)).size == 0

    def test_short_input(self):
        assert find_peaks(np.array([1.0, 2.0])).size == 0

    def test_top_k_descending_and_padded(self):
        x = np.array([0.0, 3.0, 1.0, 5.0, 2.0, 4.0, 0.0])
        peaks = top_k_peaks(x, k=4)
        assert peaks.tolist() == [5.0, 4.0, 3.0, 0.0]

    def test_top_k_no_local_maxima_falls_back_to_global(self):
        x = np.arange(6.0)
        peaks = top_k_peaks(x, k=3)
        assert peaks[0] == 5.0
        assert np.all(peaks[1:] == 0.0)

    def test_top_k_validation(self):
        with pytest.raises(ValueError):
            top_k_peaks(np.ones(4), k=0)

    @given(finite_arrays, st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_top_k_sorted_and_fixed_length(self, x, k):
        peaks = top_k_peaks(x, k)
        assert peaks.shape == (k,)
        nonzero = peaks[np.abs(peaks) > 0]
        assert np.all(np.diff(nonzero) <= 1e-12)
