"""Tests for the k-nearest-neighbour classifier."""

import numpy as np
import pytest

from repro.ml import KNeighborsClassifier
from repro.ml.base import NotFittedError


class TestKnn:
    def test_memorizes_training_points_k1(self):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((30, 3))
        y = rng.integers(0, 2, 30)
        model = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert model.score(X, y) == 1.0

    def test_majority_vote(self):
        X = np.array([[0.0], [0.1], [0.2], [5.0]])
        y = np.array([0, 0, 0, 1])
        model = KNeighborsClassifier(n_neighbors=3).fit(X, y)
        assert model.predict(np.array([[0.05]]))[0] == 0

    def test_distance_weighting_prefers_near(self):
        X = np.array([[0.0], [1.0], [1.1]])
        y = np.array([0, 1, 1])
        uniform = KNeighborsClassifier(3, weights="uniform").fit(X, y)
        weighted = KNeighborsClassifier(3, weights="distance").fit(X, y)
        query = np.array([[0.01]])
        assert uniform.predict(query)[0] == 1  # 2-vs-1 majority
        assert weighted.predict(query)[0] == 0  # nearest dominates

    def test_proba_fractions(self):
        X = np.array([[0.0], [0.1], [5.0]])
        y = np.array([0, 0, 1])
        model = KNeighborsClassifier(3).fit(X, y)
        proba = model.predict_proba(np.array([[0.0]]))
        assert proba[0].tolist() == pytest.approx([2 / 3, 1 / 3])

    def test_needs_enough_samples(self):
        with pytest.raises(ValueError, match="n_neighbors"):
            KNeighborsClassifier(5).fit(np.zeros((3, 2)), np.zeros(3))

    def test_validation(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(0)
        with pytest.raises(ValueError):
            KNeighborsClassifier(3, weights="cosine")

    def test_unfitted(self):
        with pytest.raises(NotFittedError):
            KNeighborsClassifier().predict(np.zeros((1, 2)))

    def test_string_labels(self):
        X = np.array([[0.0], [0.1], [5.0], [5.1]])
        y = np.array(["near", "near", "far", "far"])
        model = KNeighborsClassifier(1).fit(X, y)
        assert model.predict(np.array([[4.9]]))[0] == "far"
