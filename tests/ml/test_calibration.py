"""Tests for calibration diagnostics, incl. a check on Platt scaling."""

import numpy as np
import pytest

from repro.ml import SVC
from repro.ml.calibration import (
    brier_score,
    expected_calibration_error,
    reliability_curve,
)


def perfectly_calibrated(n=20_000, seed=0):
    rng = np.random.default_rng(seed)
    p = rng.random(n)
    y = (rng.random(n) < p).astype(int)
    return y, p


class TestReliabilityCurve:
    def test_bin_structure(self):
        y, p = perfectly_calibrated()
        curve = reliability_curve(y, p, n_bins=10)
        assert curve.bin_centers.size == 10
        assert curve.counts.sum() == y.size

    def test_calibrated_curve_hugs_diagonal(self):
        y, p = perfectly_calibrated()
        curve = reliability_curve(y, p)
        populated = curve.counts > 100
        assert np.allclose(
            curve.predicted_mean[populated], curve.observed_fraction[populated], atol=0.05
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            reliability_curve(np.array([0, 1]), np.array([0.5, 1.5]))
        with pytest.raises(ValueError):
            reliability_curve(np.array([0, 2]), np.array([0.5, 0.5]))
        with pytest.raises(ValueError):
            reliability_curve(np.array([0, 1]), np.array([0.5, 0.5]), n_bins=1)
        with pytest.raises(ValueError):
            reliability_curve(np.array([]), np.array([]))


class TestEce:
    def test_calibrated_near_zero(self):
        y, p = perfectly_calibrated()
        assert expected_calibration_error(y, p) < 0.02

    def test_overconfident_is_penalized(self):
        y, p = perfectly_calibrated()
        overconfident = np.clip((p - 0.5) * 3.0 + 0.5, 0.0, 1.0)
        assert expected_calibration_error(y, overconfident) > 0.08

    def test_constant_half_on_balanced_data(self):
        y = np.array([0, 1] * 500)
        p = np.full(1000, 0.5)
        assert expected_calibration_error(y, p) == pytest.approx(0.0, abs=1e-12)


class TestBrier:
    def test_perfect_predictions(self):
        y = np.array([0, 1, 1, 0])
        assert brier_score(y, y.astype(float)) == 0.0

    def test_worst_predictions(self):
        y = np.array([0, 1])
        assert brier_score(y, np.array([1.0, 0.0])) == 1.0


class TestPlattScalingCalibration:
    def test_svm_probabilities_are_roughly_calibrated(self):
        """Platt-scaled SVM probabilities on overlapping gaussians must
        have moderate ECE (far better than raw +-1 decisions would)."""
        rng = np.random.default_rng(3)
        n = 400
        X = np.vstack([rng.normal(0, 1, (n, 4)), rng.normal(1.4, 1, (n, 4))])
        y = np.array([0] * n + [1] * n)
        perm = rng.permutation(2 * n)
        X, y = X[perm], y[perm]
        model = SVC(C=1.0, probability=True).fit(X[:500], y[:500])
        probabilities = model.predict_proba(X[500:])[:, 1]
        ece = expected_calibration_error(y[500:], probabilities)
        assert ece < 0.12
