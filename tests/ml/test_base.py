"""Tests for estimator plumbing (validation helpers, base behaviour)."""

import numpy as np
import pytest

from repro.ml import check_features, check_labels, encode_labels
from repro.ml.base import Classifier, NotFittedError


class TestCheckFeatures:
    def test_accepts_lists(self):
        X = check_features([[1, 2], [3, 4]])
        assert X.dtype == float
        assert X.shape == (2, 2)

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            check_features(np.zeros(5))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="no samples"):
            check_features(np.zeros((0, 3)))

    def test_rejects_nan(self):
        X = np.ones((2, 2))
        X[0, 0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            check_features(X)

    def test_rejects_inf(self):
        X = np.ones((2, 2))
        X[1, 1] = np.inf
        with pytest.raises(ValueError):
            check_features(X)


class TestCheckLabels:
    def test_passes_matching(self):
        y = check_labels(np.array([0, 1, 0]), 3)
        assert y.shape == (3,)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            check_labels(np.zeros((3, 1)), 3)

    def test_rejects_count_mismatch(self):
        with pytest.raises(ValueError, match="labels"):
            check_labels(np.zeros(3), 4)


class TestEncodeLabels:
    def test_codes_and_classes(self):
        classes, codes = encode_labels(np.array(["b", "a", "b"]))
        assert classes.tolist() == ["a", "b"]
        assert codes.tolist() == [1, 0, 1]


class TestClassifierBase:
    class Constant(Classifier):
        """Predicts a constant; enough to exercise the base methods."""

        def fit(self, X, y):
            self.classes_ = np.unique(y)
            return self

        def predict(self, X):
            self._require_fitted()
            return np.full(np.asarray(X).shape[0], self.classes_[0])

    def test_score(self):
        model = self.Constant().fit(np.zeros((4, 1)), np.array([1, 1, 1, 2]))
        assert model.score(np.zeros((4, 1)), np.array([1, 1, 1, 2])) == 0.75

    def test_require_fitted(self):
        with pytest.raises(NotFittedError):
            self.Constant().predict(np.zeros((1, 1)))

    def test_predict_proba_default_raises(self):
        model = self.Constant().fit(np.zeros((2, 1)), np.array([0, 1]))
        with pytest.raises(NotImplementedError):
            model.predict_proba(np.zeros((1, 1)))
