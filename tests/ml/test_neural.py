"""Tests for the numpy neural-network framework, including numerical
gradient checks of every layer's backward pass."""

import numpy as np
import pytest

from repro.ml import (
    Adam,
    Conv1d,
    Dense,
    Dropout,
    GlobalAvgPool1d,
    ReLU,
    SpectroTemporalNet,
    cross_entropy_loss,
    softmax,
)


def numerical_gradient(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    flat = x.ravel()
    grad_flat = grad.ravel()
    for k in range(flat.size):
        old = flat[k]
        flat[k] = old + eps
        plus = f()
        flat[k] = old - eps
        minus = f()
        flat[k] = old
        grad_flat[k] = (plus - minus) / (2 * eps)
    return grad


class TestGradients:
    def test_dense_backward_matches_numerical(self):
        rng = np.random.default_rng(0)
        layer = Dense(4, 3, rng)
        x = rng.standard_normal((5, 4))
        target = rng.standard_normal((5, 3))

        def loss():
            return 0.5 * np.sum((layer.forward(x, True) - target) ** 2)

        out = layer.forward(x, True)
        layer.backward(out - target)
        for param, grad in zip(layer.parameters(), layer.gradients()):
            numeric = numerical_gradient(loss, param)
            assert np.allclose(grad, numeric, atol=1e-4)

    def test_dense_input_gradient(self):
        rng = np.random.default_rng(1)
        layer = Dense(4, 2, rng)
        x = rng.standard_normal((3, 4))
        target = rng.standard_normal((3, 2))

        def loss():
            return 0.5 * np.sum((layer.forward(x, True) - target) ** 2)

        out = layer.forward(x, True)
        dx = layer.backward(out - target)
        numeric = numerical_gradient(loss, x)
        assert np.allclose(dx, numeric, atol=1e-4)

    def test_conv1d_backward_matches_numerical(self):
        rng = np.random.default_rng(2)
        layer = Conv1d(2, 3, kernel_size=3, stride=2, rng=rng)
        x = rng.standard_normal((2, 2, 11))
        target = rng.standard_normal((2, 3, 5))

        def loss():
            return 0.5 * np.sum((layer.forward(x, True) - target) ** 2)

        out = layer.forward(x, True)
        assert out.shape == (2, 3, 5)
        dx = layer.backward(out - target)
        for param, grad in zip(layer.parameters(), layer.gradients()):
            numeric = numerical_gradient(loss, param)
            assert np.allclose(grad, numeric, atol=1e-4)
        numeric_dx = numerical_gradient(loss, x)
        assert np.allclose(dx, numeric_dx, atol=1e-4)

    def test_relu_gradient_mask(self):
        layer = ReLU()
        x = np.array([[-1.0, 2.0, -3.0, 4.0]])
        layer.forward(x, True)
        grad = layer.backward(np.ones_like(x))
        assert grad.tolist() == [[0.0, 1.0, 0.0, 1.0]]

    def test_pool_gradient_spreads_evenly(self):
        layer = GlobalAvgPool1d()
        x = np.ones((1, 2, 4))
        layer.forward(x, True)
        grad = layer.backward(np.ones((1, 2)))
        assert np.allclose(grad, 0.25)

    def test_cross_entropy_gradient(self):
        rng = np.random.default_rng(3)
        logits = rng.standard_normal((6, 3))
        codes = rng.integers(0, 3, 6)

        def loss():
            return cross_entropy_loss(logits, codes)[0]

        _, grad = cross_entropy_loss(logits, codes)
        numeric = numerical_gradient(loss, logits)
        assert np.allclose(grad, numeric, atol=1e-5)


class TestLayers:
    def test_conv_rejects_short_input(self):
        layer = Conv1d(1, 1, kernel_size=5, stride=1, rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="too short"):
            layer.forward(np.zeros((1, 1, 3)), True)

    def test_conv_validation(self):
        with pytest.raises(ValueError):
            Conv1d(1, 1, kernel_size=0, stride=1, rng=np.random.default_rng(0))

    def test_dropout_inference_identity(self):
        layer = Dropout(0.5, np.random.default_rng(0))
        x = np.ones((4, 4))
        assert np.array_equal(layer.forward(x, training=False), x)

    def test_dropout_preserves_expectation(self):
        layer = Dropout(0.5, np.random.default_rng(0))
        x = np.ones((200, 200))
        out = layer.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_dropout_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.0, np.random.default_rng(0))

    def test_softmax_rows_sum_to_one(self):
        z = np.random.default_rng(4).standard_normal((5, 7)) * 50
        p = softmax(z)
        assert np.allclose(p.sum(axis=1), 1.0)
        assert np.all(p >= 0)


class TestAdam:
    def test_minimizes_quadratic(self):
        x = np.array([5.0, -3.0])
        optimizer = Adam([x], learning_rate=0.1)
        for _ in range(400):
            optimizer.step([2.0 * x])
        assert np.allclose(x, 0.0, atol=1e-2)

    def test_gradient_count_mismatch(self):
        optimizer = Adam([np.zeros(3)])
        with pytest.raises(ValueError):
            optimizer.step([np.zeros(3), np.zeros(2)])


class TestSpectroTemporalNet:
    def make_data(self, n=60, seed=0):
        rng = np.random.default_rng(seed)
        features, labels = [], []
        for k in range(n):
            label = k % 2
            base = rng.standard_normal((rng.integers(40, 120), 16))
            if label:
                base[:, 8:] += 1.5  # bright class
            features.append(base)
            labels.append(label)
        return features, np.asarray(labels)

    def test_learns_separable_classes(self):
        features, labels = self.make_data()
        net = SpectroTemporalNet(n_bands=16, n_frames=64, epochs=15, random_state=0)
        net.fit(features, labels)
        assert net.history.accuracy[-1] > 0.9

    def test_predict_proba_shape(self):
        features, labels = self.make_data(20)
        net = SpectroTemporalNet(n_bands=16, n_frames=64, epochs=3)
        net.fit(features, labels)
        proba = net.predict_proba(features[:5])
        assert proba.shape == (5, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_pad_features(self):
        net = SpectroTemporalNet(n_bands=16, n_frames=64)
        short = np.zeros((10, 16))
        long = np.zeros((200, 16))
        assert net.pad_features(short).shape == (64, 16)
        assert net.pad_features(long).shape == (64, 16)

    def test_pad_features_validates_bands(self):
        net = SpectroTemporalNet(n_bands=16, n_frames=64)
        with pytest.raises(ValueError):
            net.pad_features(np.zeros((10, 8)))

    def test_incremental_fit_continues(self):
        features, labels = self.make_data(40)
        net = SpectroTemporalNet(n_bands=16, n_frames=64, epochs=4)
        net.fit(features, labels)
        epochs_before = len(net.history.loss)
        net.fit(features, labels, epochs=2, reset=False)
        assert len(net.history.loss) == epochs_before + 2

    def test_incremental_rejects_unseen_class(self):
        features, labels = self.make_data(20)
        net = SpectroTemporalNet(n_bands=16, n_frames=64, epochs=2)
        net.fit(features, labels)
        with pytest.raises(ValueError, match="unseen"):
            net.fit(features[:4], np.array([7, 7, 7, 7]), reset=False)

    def test_scores_are_positive_class_probability(self):
        features, labels = self.make_data(30)
        net = SpectroTemporalNet(n_bands=16, n_frames=64, epochs=5)
        net.fit(features, labels)
        scores = net.scores(features, positive_label=1)
        proba = net.predict_proba(features)
        assert np.allclose(scores, proba[:, 1])
