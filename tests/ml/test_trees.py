"""Tests for the CART decision tree and the random forest."""

import numpy as np
import pytest

from repro.ml import DecisionTreeClassifier, RandomForestClassifier
from repro.ml.base import NotFittedError


def stripes(n=120, seed=0):
    """1-D threshold problem: y = x0 > 0."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, (n, 3))
    return X, (X[:, 0] > 0).astype(int)


class TestDecisionTree:
    def test_learns_threshold(self):
        X, y = stripes()
        tree = DecisionTreeClassifier(max_splits=1).fit(X, y)
        assert tree.score(X, y) > 0.95
        assert tree.n_splits_ == 1
        assert tree.root_.feature == 0
        assert abs(tree.root_.threshold) < 0.15

    def test_max_splits_budget(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-1, 1, (300, 4))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        tree = DecisionTreeClassifier(max_splits=5).fit(X, y)
        assert tree.n_splits_ <= 5

    def test_best_first_beats_tiny_budget_on_xor(self):
        """XOR needs 3 splits; 3-split best-first tree should get there."""
        rng = np.random.default_rng(2)
        X = rng.uniform(-1, 1, (500, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        tree = DecisionTreeClassifier(max_splits=3).fit(X, y)
        assert tree.score(X, y) > 0.9

    def test_max_depth(self):
        X, y = stripes(300)
        tree = DecisionTreeClassifier(max_splits=None, max_depth=2).fit(X, y)
        assert tree.depth_ <= 2

    def test_min_samples_leaf(self):
        X, y = stripes(50)
        tree = DecisionTreeClassifier(max_splits=None, min_samples_leaf=20).fit(X, y)
        # Any split must leave >= 20 per side, so at most 1 split here.
        assert tree.n_splits_ <= 1

    def test_pure_node_stops(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([1, 1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.n_splits_ == 0
        assert np.all(tree.predict(X) == 1)

    def test_predict_proba_rows_sum(self):
        X, y = stripes()
        tree = DecisionTreeClassifier().fit(X, y)
        proba = tree.predict_proba(X[:10])
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_string_labels(self):
        X, y = stripes()
        labels = np.where(y == 1, "a", "b")
        tree = DecisionTreeClassifier().fit(X, labels)
        assert set(tree.predict(X)) <= {"a", "b"}

    def test_unfitted(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict(np.zeros((1, 3)))

    def test_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_splits=0)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_leaf=0)

    def test_constant_features_yield_leaf(self):
        X = np.ones((20, 3))
        y = np.arange(20) % 2
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.n_splits_ == 0


class TestRandomForest:
    def test_beats_single_stump_on_xor(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(-1, 1, (400, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        stump = DecisionTreeClassifier(max_splits=1).fit(X, y)
        forest = RandomForestClassifier(n_estimators=25, random_state=0).fit(X, y)
        assert forest.score(X, y) > stump.score(X, y)
        assert forest.score(X, y) > 0.9

    def test_deterministic_given_seed(self):
        X, y = stripes(100)
        a = RandomForestClassifier(n_estimators=5, random_state=7).fit(X, y)
        b = RandomForestClassifier(n_estimators=5, random_state=7).fit(X, y)
        assert np.array_equal(a.predict(X), b.predict(X))

    def test_proba_shape(self):
        X, y = stripes(100)
        forest = RandomForestClassifier(n_estimators=5).fit(X, y)
        proba = forest.predict_proba(X[:7])
        assert proba.shape == (7, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_handles_class_missing_from_bootstrap(self):
        """Heavily imbalanced data: some bootstraps miss the rare class."""
        rng = np.random.default_rng(4)
        X = rng.standard_normal((60, 2))
        y = np.array([1] * 57 + [0] * 3)
        forest = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)
        proba = forest.predict_proba(X)
        assert proba.shape == (60, 2)
        assert np.all(np.isfinite(proba))

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)

    def test_unfitted(self):
        with pytest.raises(NotFittedError):
            RandomForestClassifier().predict(np.zeros((1, 2)))
