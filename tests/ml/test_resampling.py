"""Tests for SMOTE and ADASYN oversampling."""

import numpy as np
import pytest

from repro.ml import adasyn, smote


def imbalanced(n_minority=15, n_majority=60, seed=0, dims=4):
    rng = np.random.default_rng(seed)
    X = np.vstack(
        [rng.normal(0, 1, (n_minority, dims)), rng.normal(3, 1, (n_majority, dims))]
    )
    y = np.array([1] * n_minority + [0] * n_majority)
    return X, y


@pytest.mark.parametrize("method", [smote, adasyn], ids=["smote", "adasyn"])
class TestCommonBehaviour:
    def test_balances_classes(self, method):
        X, y = imbalanced()
        X_out, y_out = method(X, y)
        values, counts = np.unique(y_out, return_counts=True)
        assert counts[0] == counts[1]

    def test_original_samples_preserved(self, method):
        X, y = imbalanced()
        X_out, y_out = method(X, y)
        assert np.array_equal(X_out[: X.shape[0]], X)
        assert np.array_equal(y_out[: y.shape[0]], y)

    def test_synthetic_points_near_minority_cloud(self, method):
        """Interpolated points stay inside the minority class's region."""
        X, y = imbalanced(seed=1)
        X_out, y_out = method(X, y, random_state=1)
        synthetic = X_out[X.shape[0] :]
        minority = X[y == 1]
        lo, hi = minority.min(axis=0) - 1e-9, minority.max(axis=0) + 1e-9
        assert np.all(synthetic >= lo) and np.all(synthetic <= hi)

    def test_already_balanced_passthrough(self, method):
        X, y = imbalanced(30, 30)
        X_out, y_out = method(X, y)
        assert X_out.shape == X.shape

    def test_deterministic_given_seed(self, method):
        X, y = imbalanced()
        a = method(X, y, random_state=5)[0]
        b = method(X, y, random_state=5)[0]
        assert np.array_equal(a, b)

    def test_rejects_multiclass(self, method):
        X = np.random.default_rng(0).standard_normal((30, 2))
        y = np.arange(30) % 3
        with pytest.raises(ValueError, match="binary"):
            method(X, y)

    def test_tiny_minority_adapts_k(self, method):
        X, y = imbalanced(n_minority=3, n_majority=30)
        X_out, y_out = method(X, y, k_neighbors=5)
        assert np.sum(y_out == 1) == np.sum(y_out == 0)


class TestAdasynSpecific:
    def test_focuses_on_boundary(self):
        """ADASYN must allocate more synthetics near the class boundary
        than deep inside the minority cloud."""
        rng = np.random.default_rng(3)
        # Minority: a far cluster (easy) plus a boundary cluster (hard).
        easy = rng.normal(-5, 0.3, (10, 2))
        hard = rng.normal(2.5, 0.3, (10, 2))
        majority = rng.normal(3, 1.0, (80, 2))
        X = np.vstack([easy, hard, majority])
        y = np.array([1] * 20 + [0] * 80)
        X_out, y_out = adasyn(X, y, random_state=0)
        synthetic = X_out[X.shape[0] :]
        near_hard = np.sum(np.linalg.norm(synthetic - [2.5, 2.5], axis=1) < 2.5)
        near_easy = np.sum(np.linalg.norm(synthetic - [-5, -5], axis=1) < 2.5)
        assert near_hard > near_easy
