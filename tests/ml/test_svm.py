"""Tests for the SMO-trained SVM."""

import numpy as np
import pytest

from repro.ml import SVC, OneVsRestClassifier, linear_kernel, polynomial_kernel, rbf_kernel
from repro.ml.base import NotFittedError


def blobs(n=80, gap=2.0, seed=0):
    rng = np.random.default_rng(seed)
    X = np.vstack([rng.normal(0, 1, (n, 4)), rng.normal(gap, 1, (n, 4))])
    y = np.array([0] * n + [1] * n)
    perm = rng.permutation(2 * n)
    return X[perm], y[perm]


class TestKernels:
    def test_rbf_diagonal_ones(self):
        X = np.random.default_rng(0).standard_normal((5, 3))
        K = rbf_kernel(X, X, gamma=0.5)
        assert np.allclose(np.diag(K), 1.0)

    def test_rbf_symmetric_and_bounded(self):
        X = np.random.default_rng(1).standard_normal((6, 3))
        K = rbf_kernel(X, X, gamma=1.0)
        assert np.allclose(K, K.T)
        assert np.all(K <= 1.0 + 1e-12) and np.all(K > 0)

    def test_linear_matches_dot(self):
        A = np.random.default_rng(2).standard_normal((3, 4))
        assert np.allclose(linear_kernel(A, A), A @ A.T)

    def test_polynomial(self):
        A = np.ones((1, 2))
        assert polynomial_kernel(A, A, degree=2)[0, 0] == pytest.approx(9.0)


class TestSvcTraining:
    def test_separable_blobs(self):
        X, y = blobs(gap=3.0)
        model = SVC(C=1.0).fit(X[:100], y[:100])
        assert model.score(X[100:], y[100:]) > 0.95

    def test_xor_needs_rbf(self):
        """XOR: linear fails, RBF succeeds."""
        rng = np.random.default_rng(3)
        X = rng.uniform(-1, 1, (200, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        rbf = SVC(C=10.0, kernel="rbf", gamma=2.0).fit(X, y)
        lin = SVC(C=10.0, kernel="linear").fit(X, y)
        assert rbf.score(X, y) > 0.9
        assert lin.score(X, y) < 0.75

    def test_string_labels(self):
        X, y = blobs()
        labels = np.where(y == 1, "facing", "non-facing")
        model = SVC().fit(X, labels)
        assert set(model.predict(X[:10])) <= {"facing", "non-facing"}

    def test_decision_function_sign_convention(self):
        X, y = blobs(gap=4.0)
        model = SVC().fit(X, y)
        decision = model.decision_function(X)
        predictions = model.predict(X)
        assert np.all((decision >= 0) == (predictions == model.classes_[1]))

    def test_support_vectors_subset(self):
        X, y = blobs(gap=4.0)
        model = SVC(C=1.0).fit(X, y)
        assert 0 < model.support_vectors_.shape[0] <= X.shape[0]

    def test_rejects_multiclass(self):
        X = np.random.default_rng(0).standard_normal((30, 2))
        y = np.arange(30) % 3
        with pytest.raises(ValueError, match="binary"):
            SVC().fit(X, y)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            SVC().predict(np.zeros((1, 2)))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SVC(C=0.0)
        with pytest.raises(ValueError):
            SVC(kernel="sigmoid")


class TestProbabilities:
    def test_shape_and_sum(self):
        X, y = blobs()
        model = SVC(probability=True).fit(X, y)
        proba = model.predict_proba(X[:20])
        assert proba.shape == (20, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_confident_on_easy_points(self):
        X, y = blobs(gap=5.0)
        model = SVC(probability=True).fit(X, y)
        proba = model.predict_proba(X)
        picked = proba[np.arange(len(y)), y]
        assert np.median(picked) > 0.9

    def test_probability_false_raises(self):
        X, y = blobs()
        model = SVC(probability=False).fit(X, y)
        with pytest.raises(RuntimeError, match="probability"):
            model.predict_proba(X)

    def test_proba_consistent_with_prediction(self):
        X, y = blobs(gap=1.0, seed=7)
        model = SVC(probability=True).fit(X, y)
        proba = model.predict_proba(X)
        hard = model.predict(X)
        soft = model.classes_[np.argmax(proba, axis=1)]
        assert np.mean(hard == soft) > 0.97


class TestOneVsRest:
    def test_three_class_blobs(self):
        rng = np.random.default_rng(4)
        X = np.vstack([rng.normal(c * 3, 1, (40, 3)) for c in range(3)])
        y = np.repeat([0, 1, 2], 40)
        model = OneVsRestClassifier(lambda: SVC(C=1.0)).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_proba_rows_sum_to_one(self):
        rng = np.random.default_rng(5)
        X = np.vstack([rng.normal(c * 3, 1, (30, 2)) for c in range(3)])
        y = np.repeat([0, 1, 2], 30)
        model = OneVsRestClassifier(lambda: SVC()).fit(X, y)
        proba = model.predict_proba(X[:10])
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            OneVsRestClassifier(lambda: SVC()).fit(np.zeros((5, 2)), np.zeros(5))
