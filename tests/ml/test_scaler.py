"""Tests for feature scalers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import MinMaxScaler, StandardScaler
from repro.ml.base import NotFittedError


class TestStandardScaler:
    def test_zero_mean_unit_var(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, (200, 4))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_feature_not_divided_by_zero(self):
        X = np.ones((10, 2))
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))

    def test_inverse_roundtrip(self):
        rng = np.random.default_rng(1)
        X = rng.normal(0, 2, (50, 3))
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_transform_uses_training_stats(self):
        scaler = StandardScaler().fit(np.array([[0.0], [2.0]]))
        assert scaler.transform(np.array([[4.0]]))[0, 0] == pytest.approx(3.0)

    def test_dimension_mismatch(self):
        scaler = StandardScaler().fit(np.zeros((5, 3)))
        with pytest.raises(ValueError, match="features"):
            scaler.transform(np.zeros((5, 4)))

    def test_unfitted(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.zeros((2, 2)))

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_idempotent_on_standardized_data(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(0, 1, (100, 3))
        Z = StandardScaler().fit_transform(X)
        Z2 = StandardScaler().fit_transform(Z)
        assert np.allclose(Z, Z2, atol=1e-8)


class TestMinMaxScaler:
    def test_unit_interval(self):
        rng = np.random.default_rng(2)
        X = rng.normal(0, 10, (100, 3))
        Z = MinMaxScaler().fit_transform(X)
        assert Z.min() == pytest.approx(0.0)
        assert Z.max() == pytest.approx(1.0)

    def test_constant_feature(self):
        Z = MinMaxScaler().fit_transform(np.full((5, 1), 3.0))
        assert np.all(Z == 0.0)

    def test_unfitted(self):
        with pytest.raises(NotFittedError):
            MinMaxScaler().transform(np.zeros((2, 2)))
