"""Tests for high-confidence self-training."""

import numpy as np
import pytest

from repro.ml import (
    IncrementalModelPool,
    SVC,
    select_high_confidence,
    self_training_update,
)


def drifting_blobs(shift=0.0, n=40, seed=0):
    rng = np.random.default_rng(seed)
    X = np.vstack(
        [rng.normal(0 + shift, 0.8, (n, 3)), rng.normal(3 + shift, 0.8, (n, 3))]
    )
    y = np.array([0] * n + [1] * n)
    return X, y


def factory():
    return SVC(C=1.0, probability=True)


class TestSelectHighConfidence:
    def test_selects_confident_rows(self):
        X, y = drifting_blobs()
        model = factory().fit(X, y)
        X_new, y_new = drifting_blobs(seed=1)
        rows, labels = select_high_confidence(model, X_new, threshold=0.8)
        assert rows.size > 0
        assert np.mean(labels == y_new[rows]) > 0.9

    def test_high_threshold_selects_fewer(self):
        X, y = drifting_blobs()
        model = factory().fit(X, y)
        X_new, _ = drifting_blobs(seed=2)
        low, _ = select_high_confidence(model, X_new, threshold=0.6)
        high, _ = select_high_confidence(model, X_new, threshold=0.99)
        assert high.size <= low.size

    def test_threshold_validation(self):
        X, y = drifting_blobs()
        model = factory().fit(X, y)
        with pytest.raises(ValueError):
            select_high_confidence(model, X, threshold=0.3)


class TestSelfTrainingUpdate:
    def test_recovers_under_drift(self):
        X, y = drifting_blobs()
        X_drift, y_drift = drifting_blobs(shift=1.2, seed=3)
        stale = factory().fit(X, y)
        stale_accuracy = stale.score(X_drift, y_drift)
        outcome = self_training_update(factory, X, y, X_drift, n_to_add=30)
        updated_accuracy = outcome.model.score(X_drift, y_drift)
        assert outcome.n_added > 0
        assert updated_accuracy >= stale_accuracy

    def test_n_to_add_bounds_absorption(self):
        X, y = drifting_blobs()
        X_new, _ = drifting_blobs(seed=4)
        outcome = self_training_update(factory, X, y, X_new, n_to_add=5)
        assert outcome.n_added <= 5

    def test_zero_additions(self):
        X, y = drifting_blobs()
        X_new, _ = drifting_blobs(seed=5)
        outcome = self_training_update(factory, X, y, X_new, n_to_add=0)
        assert outcome.n_added == 0

    def test_validation(self):
        X, y = drifting_blobs()
        with pytest.raises(ValueError):
            self_training_update(factory, X, y, X, n_to_add=-1)


class TestIncrementalModelPool:
    def test_pool_grows(self):
        X, y = drifting_blobs()
        pool = IncrementalModelPool(factory=factory, X_pool=X, y_pool=y)
        initial = pool.X_pool.shape[0]
        X_new, _ = drifting_blobs(seed=6)
        outcome = pool.absorb(X_new, n_to_add=10)
        assert pool.X_pool.shape[0] == initial + outcome.n_added
        assert len(pool.rounds) == 1

    def test_score_delegates(self):
        X, y = drifting_blobs()
        pool = IncrementalModelPool(factory=factory, X_pool=X, y_pool=y)
        assert pool.score(X, y) > 0.9
