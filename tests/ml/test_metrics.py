"""Tests for evaluation metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    accuracy,
    auc,
    binary_report,
    confusion_matrix,
    equal_error_rate,
    f1_score,
    false_acceptance_rate,
    false_rejection_rate,
    precision_recall_f1,
    roc_curve,
    true_positive_rate,
)

Y_TRUE = np.array([1, 1, 1, 1, 0, 0, 0, 0])
Y_PRED = np.array([1, 1, 1, 0, 0, 0, 1, 1])


class TestBasicMetrics:
    def test_accuracy(self):
        assert accuracy(Y_TRUE, Y_PRED) == pytest.approx(5 / 8)

    def test_precision_recall_f1(self):
        precision, recall, f1 = precision_recall_f1(Y_TRUE, Y_PRED)
        assert precision == pytest.approx(3 / 5)
        assert recall == pytest.approx(3 / 4)
        assert f1 == pytest.approx(2 * 0.6 * 0.75 / 1.35)

    def test_far_frr_tpr(self):
        assert false_acceptance_rate(Y_TRUE, Y_PRED) == pytest.approx(2 / 4)
        assert false_rejection_rate(Y_TRUE, Y_PRED) == pytest.approx(1 / 4)
        assert true_positive_rate(Y_TRUE, Y_PRED) == pytest.approx(3 / 4)

    def test_perfect_prediction(self):
        report = binary_report(Y_TRUE, Y_TRUE)
        assert report.accuracy == 1.0
        assert report.far == 0.0
        assert report.frr == 0.0
        assert report.f1 == 1.0

    def test_no_negatives_far_zero(self):
        assert false_acceptance_rate(np.ones(4), np.ones(4)) == 0.0

    def test_f1_zero_when_nothing_predicted_positive(self):
        assert f1_score(np.array([1, 1, 0]), np.array([0, 0, 0])) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.ones(3), np.ones(4))

    def test_empty_inputs(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_string_labels(self):
        y = np.array(["facing", "non-facing", "facing"])
        p = np.array(["facing", "facing", "facing"])
        report = binary_report(y, p, positive_label="facing")
        assert report.recall == 1.0
        assert report.far == 1.0

    def test_as_row_percentages(self):
        row = binary_report(Y_TRUE, Y_PRED).as_row()
        assert row["accuracy"] == pytest.approx(62.5)


class TestConfusion:
    def test_counts(self):
        labels, matrix = confusion_matrix(Y_TRUE, Y_PRED)
        assert labels.tolist() == [0, 1]
        assert matrix[1, 1] == 3  # true positives
        assert matrix[0, 1] == 2  # false positives
        assert matrix.sum() == 8

    def test_explicit_labels(self):
        labels, matrix = confusion_matrix(
            np.array([0]), np.array([0]), labels=np.array([0, 1, 2])
        )
        assert matrix.shape == (3, 3)


class TestRoc:
    def test_perfect_separation(self):
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        labels = np.array([0, 0, 1, 1])
        far, tpr, _ = roc_curve(labels, scores)
        assert auc(far, tpr) == pytest.approx(1.0)
        assert equal_error_rate(labels, scores) == pytest.approx(0.0)

    def test_reversed_scores(self):
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        labels = np.array([0, 0, 1, 1])
        assert equal_error_rate(labels, scores) == pytest.approx(1.0)

    def test_random_scores_eer_near_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, 4000)
        scores = rng.random(4000)
        assert equal_error_rate(labels, scores) == pytest.approx(0.5, abs=0.05)

    def test_gaussian_overlap_eer(self):
        """Two unit gaussians 2 sigma apart: EER = Phi(-1) ~ 15.9%."""
        rng = np.random.default_rng(1)
        n = 20_000
        scores = np.concatenate([rng.normal(0, 1, n), rng.normal(2, 1, n)])
        labels = np.array([0] * n + [1] * n)
        assert equal_error_rate(labels, scores) == pytest.approx(0.159, abs=0.01)

    def test_curve_monotone(self):
        rng = np.random.default_rng(2)
        labels = rng.integers(0, 2, 500)
        scores = rng.random(500)
        far, tpr, thresholds = roc_curve(labels, scores)
        assert np.all(np.diff(far) >= 0)
        assert np.all(np.diff(tpr) >= 0)
        assert np.all(np.diff(thresholds) <= 0)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            roc_curve(np.ones(5), np.random.random(5))

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_eer_always_in_unit_interval(self, seed):
        rng = np.random.default_rng(seed)
        n = 50
        labels = np.concatenate([np.zeros(n), np.ones(n)])
        scores = rng.random(2 * n)
        eer = equal_error_rate(labels, scores)
        assert 0.0 <= eer <= 1.0
