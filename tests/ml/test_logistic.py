"""Tests for logistic regression."""

import numpy as np
import pytest

from repro.ml.base import NotFittedError
from repro.ml.calibration import expected_calibration_error
from repro.ml.logistic import LogisticRegression


def blobs(n=150, gap=2.0, seed=0):
    rng = np.random.default_rng(seed)
    X = np.vstack([rng.normal(0, 1, (n, 3)), rng.normal(gap, 1, (n, 3))])
    y = np.array([0] * n + [1] * n)
    perm = rng.permutation(2 * n)
    return X[perm], y[perm]


class TestFit:
    def test_separates_blobs(self):
        X, y = blobs()
        model = LogisticRegression().fit(X, y)
        assert model.score(X, y) > 0.95

    def test_converges_quickly(self):
        X, y = blobs()
        model = LogisticRegression().fit(X, y)
        assert model.n_iterations_ < 25

    def test_recovers_known_weights(self):
        """Data generated from a logistic model recovers its weights."""
        rng = np.random.default_rng(1)
        true_beta = np.array([1.5, -2.0])
        X = rng.normal(0, 1, (20_000, 2))
        p = 1.0 / (1.0 + np.exp(-(X @ true_beta)))
        y = (rng.random(20_000) < p).astype(int)
        model = LogisticRegression(l2=1e-6).fit(X, y)
        assert np.allclose(model.coef_, true_beta, atol=0.1)
        assert abs(model.intercept_) < 0.1

    def test_l2_shrinks_weights(self):
        X, y = blobs(gap=5.0)
        loose = LogisticRegression(l2=1e-6).fit(X, y)
        tight = LogisticRegression(l2=100.0).fit(X, y)
        assert np.linalg.norm(tight.coef_) < np.linalg.norm(loose.coef_)

    def test_separable_data_with_ridge_stays_finite(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        model = LogisticRegression(l2=1.0).fit(X, y)
        assert np.all(np.isfinite(model.coef_))

    def test_string_labels(self):
        X, y = blobs()
        labels = np.where(y == 1, "facing", "non-facing")
        model = LogisticRegression().fit(X, labels)
        assert set(model.predict(X)) <= {"facing", "non-facing"}

    def test_multiclass_rejected(self):
        X = np.random.default_rng(0).standard_normal((30, 2))
        with pytest.raises(ValueError, match="binary"):
            LogisticRegression().fit(X, np.arange(30) % 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            LogisticRegression(l2=-1.0)
        with pytest.raises(NotFittedError):
            LogisticRegression().predict(np.zeros((1, 2)))


class TestProbabilities:
    def test_rows_sum_to_one(self):
        X, y = blobs()
        model = LogisticRegression().fit(X, y)
        proba = model.predict_proba(X[:10])
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_well_calibrated_on_logistic_data(self):
        """On data from its own model family, ECE should be tiny —
        the calibrated-by-construction property."""
        rng = np.random.default_rng(2)
        beta = np.array([1.0, -1.0, 0.5])
        X = rng.normal(0, 1, (8000, 3))
        p = 1.0 / (1.0 + np.exp(-(X @ beta)))
        y = (rng.random(8000) < p).astype(int)
        model = LogisticRegression(l2=1e-4).fit(X[:4000], y[:4000])
        probabilities = model.predict_proba(X[4000:])[:, 1]
        assert expected_calibration_error(y[4000:], probabilities) < 0.03

    def test_dimension_mismatch(self):
        X, y = blobs()
        model = LogisticRegression().fit(X, y)
        with pytest.raises(ValueError, match="features"):
            model.predict(np.zeros((2, 9)))
