"""Tests for splits, cross-validation and grid search."""

import numpy as np
import pytest

from repro.ml import (
    KNeighborsClassifier,
    StratifiedKFold,
    cross_val_score,
    grid_search,
    group_k_fold,
    train_test_split,
)


def blobs(n=60, seed=0):
    rng = np.random.default_rng(seed)
    X = np.vstack([rng.normal(0, 1, (n, 3)), rng.normal(3, 1, (n, 3))])
    y = np.array([0] * n + [1] * n)
    return X, y


class TestTrainTestSplit:
    def test_sizes(self):
        X, y = blobs()
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_fraction=0.25)
        assert X_te.shape[0] == pytest.approx(30, abs=2)
        assert X_tr.shape[0] + X_te.shape[0] == 120

    def test_stratification(self):
        X, y = blobs()
        _, _, y_tr, y_te = train_test_split(X, y, test_fraction=0.25, stratify=True)
        assert np.sum(y_te == 0) == np.sum(y_te == 1)

    def test_deterministic(self):
        X, y = blobs()
        a = train_test_split(X, y, random_state=3)[1]
        b = train_test_split(X, y, random_state=3)[1]
        assert np.array_equal(a, b)

    def test_validation(self):
        X, y = blobs()
        with pytest.raises(ValueError):
            train_test_split(X, y, test_fraction=1.5)


class TestStratifiedKFold:
    def test_partitions_everything_once(self):
        X, y = blobs()
        seen = np.zeros(y.size, dtype=int)
        for train_rows, test_rows in StratifiedKFold(5).split(X, y):
            seen[test_rows] += 1
            assert np.intersect1d(train_rows, test_rows).size == 0
        assert np.all(seen == 1)

    def test_class_balance_per_fold(self):
        X, y = blobs()
        for _, test_rows in StratifiedKFold(5).split(X, y):
            fractions = np.mean(y[test_rows])
            assert fractions == pytest.approx(0.5, abs=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            list(StratifiedKFold(1).split(*blobs()))


class TestGroupKFold:
    def test_holds_out_each_group(self):
        groups = np.array(["a", "a", "b", "b", "c"])
        held = [value for value, _, _ in group_k_fold(groups)]
        assert held == ["a", "b", "c"]

    def test_no_group_leakage(self):
        groups = np.array(["a", "a", "b", "b"])
        for value, train_rows, test_rows in group_k_fold(groups):
            assert set(groups[test_rows]) == {value}
            assert value not in set(groups[train_rows])

    def test_single_group_rejected(self):
        with pytest.raises(ValueError):
            list(group_k_fold(np.array(["a", "a"])))


class TestCrossValScore:
    def test_easy_problem_scores_high(self):
        X, y = blobs()
        scores = cross_val_score(lambda: KNeighborsClassifier(3), X, y, n_splits=5)
        assert scores.shape == (5,)
        assert scores.mean() > 0.9

    def test_f1_scoring(self):
        X, y = blobs()
        scores = cross_val_score(
            lambda: KNeighborsClassifier(3), X, y, n_splits=4, scoring="f1"
        )
        assert np.all((0 <= scores) & (scores <= 1))

    def test_unknown_scoring(self):
        with pytest.raises(ValueError, match="scoring"):
            cross_val_score(lambda: KNeighborsClassifier(3), *blobs(), scoring="mcc")


class TestGridSearch:
    def test_finds_reasonable_k(self):
        X, y = blobs(seed=2)
        result = grid_search(
            lambda n_neighbors: KNeighborsClassifier(n_neighbors),
            {"n_neighbors": [1, 3, 25]},
            X,
            y,
            n_splits=4,
        )
        assert result.best_params["n_neighbors"] in (1, 3, 25)
        assert result.best_score >= max(score for _, score in result.results) - 1e-12
        assert len(result.results) == 3

    def test_empty_grid(self):
        with pytest.raises(ValueError):
            grid_search(lambda: None, {}, *blobs())
