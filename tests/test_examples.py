"""Example-script hygiene: they must at least parse and expose main().

Full runs take 30-90 s each (they render audio and train models), so
CI-style execution is reserved for the cheap CLI paths; the rest are
compile-checked and inspected."""

import ast
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


class TestExampleScripts:
    def test_examples_exist(self):
        names = {script.name for script in SCRIPTS}
        assert {
            "quickstart.py",
            "replay_attack_demo.py",
            "smart_home_session.py",
            "always_on_assistant.py",
            "cross_user_household.py",
            "run_experiment.py",
            "reproduce_paper_scale.py",
        } <= names

    @pytest.mark.parametrize("script", SCRIPTS, ids=lambda s: s.name)
    def test_parses_and_has_main(self, script):
        tree = ast.parse(script.read_text())
        functions = {
            node.name for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)
        }
        assert "main" in functions, f"{script.name} lacks a main()"

    @pytest.mark.parametrize("script", SCRIPTS, ids=lambda s: s.name)
    def test_has_module_docstring(self, script):
        tree = ast.parse(script.read_text())
        assert ast.get_docstring(tree), f"{script.name} lacks a docstring"

    def test_run_experiment_list_executes(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "run_experiment.py"), "--list"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "E01" in result.stdout and "E28" in result.stdout

    def test_run_experiment_rejects_unknown_id(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "run_experiment.py"), "E99"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 2

    def test_paper_scale_estimate_executes(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "reproduce_paper_scale.py"), "--estimate"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "9072" in result.stdout
