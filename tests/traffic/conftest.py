"""Traffic-test plumbing: clean process-global obs/monitor state.

The drive feeds the process-global decision monitor, so each test runs
against freshly reset observability state and leaves it disabled.
"""

import pytest

from repro.obs import REGISTRY, audit_log, set_obs_enabled
from repro.obs.monitor import reset_monitor, reset_slo_monitor, set_monitor_enabled


@pytest.fixture(autouse=True)
def clean_obs_state():
    set_obs_enabled(False)
    reset_monitor()
    reset_slo_monitor()
    set_monitor_enabled(True)
    REGISTRY.reset()
    audit_log().clear()
    yield
    set_obs_enabled(False)
    reset_monitor()
    reset_slo_monitor()
    set_monitor_enabled(True)
    REGISTRY.reset()
    audit_log().clear()
