"""Traffic generator: determinism, mix control, env knobs, bank renders."""

import warnings

import pytest

from repro.obs import control as obs_control
from repro.traffic import (
    ATTACK_SOURCES,
    DEFAULT_MIX,
    SOURCES,
    TRUTH_BY_SOURCE,
    CaptureBank,
    TrafficConfig,
    capture_fingerprint,
    event_stream_fingerprint,
    generate_city,
    generate_events,
    generate_households,
    parse_mix,
)


@pytest.fixture(autouse=True)
def fresh_warn_state(monkeypatch):
    """Each test sees a process that has not warned yet."""
    monkeypatch.setattr(obs_control, "_WARNED", set())


class TestEventDeterminism:
    def test_same_seed_same_event_stream(self):
        config = TrafficConfig(households=40, seed=7)
        _, first = generate_city(config)
        _, second = generate_city(TrafficConfig(households=40, seed=7))
        assert first == second
        assert event_stream_fingerprint(first) == event_stream_fingerprint(second)

    def test_different_seed_different_stream(self):
        _, first = generate_city(TrafficConfig(households=40, seed=7))
        _, second = generate_city(TrafficConfig(households=40, seed=8))
        assert event_stream_fingerprint(first) != event_stream_fingerprint(second)

    def test_households_independent_of_city_size(self):
        # Household k is drawn from its own seeded stream, so growing the
        # city extends it without rewriting existing households' days.
        small = generate_households(TrafficConfig(households=10, seed=3))
        large = generate_households(TrafficConfig(households=30, seed=3))
        assert large[:10] == small
        small_events = generate_events(TrafficConfig(households=10, seed=3))
        large_events = generate_events(TrafficConfig(households=30, seed=3))
        small_keys = {(e.household, e.time_s, e.source) for e in small_events}
        large_keys = {
            (e.household, e.time_s, e.source)
            for e in large_events
            if e.household < 10
        }
        assert small_keys == large_keys

    def test_events_sorted_and_labelled(self):
        config = TrafficConfig(households=25, seed=0)
        _, events = generate_city(config)
        assert len(events) > 100
        assert all(
            events[i].time_s <= events[i + 1].time_s for i in range(len(events) - 1)
        )
        for event in events:
            assert event.source in SOURCES
            assert event.truth == TRUTH_BY_SOURCE[event.source]
            assert event.truth == (event.source == "live-facing")
            assert event.key == (event.room, event.source, event.variant)
            assert event.slices() == {"source": event.source, "room": event.room}


class TestMixShift:
    def test_shift_boosts_the_shift_source_after_the_hour(self):
        config = TrafficConfig(households=60, seed=1, shift=True)
        _, events = generate_city(config)
        noon = config.shift_hour * 3600.0

        def loudspeaker_share(batch):
            return sum(1 for e in batch if e.source == "loudspeaker") / len(batch)

        pre = [e for e in events if e.time_s < noon]
        post = [e for e in events if e.time_s >= noon]
        assert loudspeaker_share(post) > 3 * loudspeaker_share(pre)

    def test_stationary_city_unchanged_by_shift_flag_before_noon(self):
        base = TrafficConfig(households=20, seed=5)
        shifted = TrafficConfig(households=20, seed=5, shift=True)
        _, plain = generate_city(base)
        _, with_shift = generate_city(shifted)
        noon = base.shift_hour * 3600.0
        assert [e for e in plain if e.time_s < noon] == [
            e for e in with_shift if e.time_s < noon
        ]


class TestConfig:
    def test_parse_mix_overrides_named_sources_only(self):
        mix = dict(parse_mix("loudspeaker=4,replay=1"))
        assert mix["loudspeaker"] == 4.0 and mix["replay"] == 1.0
        for name, weight in DEFAULT_MIX:
            if name not in ("loudspeaker", "replay"):
                assert mix[name] == weight

    def test_parse_mix_malformed_warns_once_and_falls_back(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert parse_mix("tv=3") == DEFAULT_MIX
            assert parse_mix("tv=3") == DEFAULT_MIX
            assert parse_mix("loudspeaker=-1") == DEFAULT_MIX
            assert parse_mix("loudspeaker=lots") == DEFAULT_MIX
        runtime = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert len(runtime) == 1
        assert "REPRO_TRAFFIC_MIX" in str(runtime[0].message)

    def test_from_env_reads_every_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRAFFIC_HOUSEHOLDS", "77")
        monkeypatch.setenv("REPRO_TRAFFIC_SEED", "5")
        monkeypatch.setenv("REPRO_TRAFFIC_HOURS", "6.5")
        monkeypatch.setenv("REPRO_TRAFFIC_RATE", "3.0")
        monkeypatch.setenv("REPRO_TRAFFIC_VARIANTS", "2")
        monkeypatch.setenv("REPRO_TRAFFIC_MIX", "noise=0")
        monkeypatch.setenv("REPRO_TRAFFIC_SHIFT", "1")
        monkeypatch.setenv("REPRO_TRAFFIC_SHIFT_HOUR", "3.0")
        monkeypatch.setenv("REPRO_TRAFFIC_SHIFT_FACTOR", "4.0")
        monkeypatch.setenv("REPRO_TRAFFIC_SHIFT_SOURCE", "replay")
        monkeypatch.setenv("REPRO_TRAFFIC_ATTACK_MIX", "0.25")
        monkeypatch.setenv("REPRO_TRAFFIC_ATTACK_SOPHISTICATION", "2.0")
        config = TrafficConfig.from_env()
        assert config.households == 77
        assert config.seed == 5
        assert config.hours == 6.5
        assert config.rate_per_household == 3.0
        assert config.variants == 2
        assert config.mix_weight("noise") == 0.0
        assert config.shift is True
        assert config.shift_hour == 3.0
        assert config.shift_factor == 4.0
        assert config.shift_source == "replay"
        assert config.attack_mix == 0.25
        assert config.attack_sophistication == 2.0

    def test_from_env_invalid_combination_warns_once_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRAFFIC_SHIFT_SOURCE", "television")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert TrafficConfig.from_env() == TrafficConfig()
            assert TrafficConfig.from_env() == TrafficConfig()
        runtime = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert len(runtime) == 1
        assert "REPRO_TRAFFIC" in str(runtime[0].message)

    def test_validation_rejects_bad_configs(self):
        with pytest.raises(ValueError):
            TrafficConfig(households=0)
        with pytest.raises(ValueError):
            TrafficConfig(rooms=("garage",))
        with pytest.raises(ValueError):
            TrafficConfig(mix=(("live-facing", 0.0),))
        with pytest.raises(ValueError):
            TrafficConfig(shift_source="tv")
        with pytest.raises(ValueError):
            TrafficConfig(attack_mix=1.0)
        with pytest.raises(ValueError):
            TrafficConfig(attack_mix=-0.1)
        with pytest.raises(ValueError):
            TrafficConfig(attack_sophistication=-1.0)


class TestAttackMix:
    def test_zero_attack_mix_keeps_the_clean_stream_byte_identical(self):
        clean = TrafficConfig(households=30, seed=3)
        assert clean.event_mix() == clean.mix
        explicit = TrafficConfig(households=30, seed=3, attack_mix=0.0)
        _, first = generate_city(clean)
        _, second = generate_city(explicit)
        assert event_stream_fingerprint(first) == event_stream_fingerprint(second)

    def test_event_mix_lands_attacks_at_the_requested_fraction(self):
        config = TrafficConfig(attack_mix=0.2)
        mix = dict(config.event_mix())
        attack_total = sum(mix[s] for s in ATTACK_SOURCES)
        base_total = sum(w for s, w in mix.items() if s not in ATTACK_SOURCES)
        assert attack_total / (attack_total + base_total) == pytest.approx(0.2)
        # Split evenly over the four families.
        assert len({mix[s] for s in ATTACK_SOURCES}) == 1

    def test_attack_events_are_labelled_and_false_truth(self):
        config = TrafficConfig(households=60, seed=1, attack_mix=0.3)
        _, events = generate_city(config)
        attack_events = [e for e in events if e.source in ATTACK_SOURCES]
        assert attack_events, "a 30% attack mix over 60 households must land events"
        assert all(not e.truth for e in attack_events)
        assert all(TRUTH_BY_SOURCE[s] is False for s in ATTACK_SOURCES)

    def test_attack_day_is_deterministic(self):
        config = TrafficConfig(households=30, seed=5, attack_mix=0.2)
        _, first = generate_city(config)
        _, second = generate_city(config)
        assert event_stream_fingerprint(first) == event_stream_fingerprint(second)


class TestCaptureBank:
    def test_bank_covers_the_taxonomy_and_renders_identically_serial_vs_pool(self):
        config = TrafficConfig(households=1, seed=0, variants=1, rooms=("lab",))
        serial = CaptureBank(config)
        serial.render(workers=1)
        assert sorted(serial.captures) == [
            ("lab", source, 0) for source in sorted(SOURCES)
        ]
        pooled = CaptureBank(config)
        pooled.render(workers=2)
        assert serial.fingerprints() == pooled.fingerprints()

    def test_fingerprints_require_render(self):
        bank = CaptureBank(TrafficConfig(variants=1, rooms=("lab",)))
        with pytest.raises(RuntimeError):
            bank.fingerprints()

    def test_capture_fingerprint_tracks_content(self):
        config = TrafficConfig(households=1, seed=0, variants=1, rooms=("lab",))
        bank = CaptureBank(config)
        bank.render(workers=1)
        captures = list(bank.captures.values())
        assert capture_fingerprint(captures[0]) != capture_fingerprint(captures[1])
        assert capture_fingerprint(captures[0]) == capture_fingerprint(captures[0])

    def test_attack_mix_adds_attack_archetypes_without_touching_clean_ones(self):
        clean = TrafficConfig(households=1, seed=0, variants=1, rooms=("lab",))
        armed = TrafficConfig(
            households=1, seed=0, variants=1, rooms=("lab",),
            attack_mix=0.2, attack_sophistication=2.0,
        )
        clean_bank, armed_bank = CaptureBank(clean), CaptureBank(armed)
        clean_bank.render(workers=1)
        armed_bank.render(workers=1)
        clean_prints = clean_bank.fingerprints()
        armed_prints = armed_bank.fingerprints()
        # Clean archetypes keep their bytes; attack archetypes join.
        assert {k: v for k, v in armed_prints.items() if k in clean_prints} == clean_prints
        assert set(armed_prints) - set(clean_prints) == {
            ("lab", source, 0) for source in ATTACK_SOURCES
        }

    def test_attack_archetypes_render_identically_serial_vs_pool(self):
        config = TrafficConfig(
            households=1, seed=0, variants=1, rooms=("lab",), attack_mix=0.2
        )
        serial, pooled = CaptureBank(config), CaptureBank(config)
        serial.render(workers=1)
        pooled.render(workers=2)
        assert serial.fingerprints() == pooled.fingerprints()
