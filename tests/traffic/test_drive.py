"""Traffic drive: gateway round trip, /quality live scrapes, gates."""

import asyncio
import json

from repro.obs import set_obs_enabled
from repro.obs import monitor as obs_monitor
from repro.obs.live import LiveConfig
from repro.obs.monitor import decision_monitor, monitor_snapshot
from repro.serving import ServingConfig, ServingGateway
from repro.serving.soak import StepClock, _StepClock
from repro.traffic import CaptureBank, TrafficConfig, generate_city
from repro.traffic.drive import (
    TRAFFIC_PSI_THRESHOLD,
    _traffic_monitor_config,
    drive_problems,
    run_city_sync,
    summary_from_stats,
)


def _mini_city(variants=1):
    config = TrafficConfig(
        households=4, seed=0, rate_per_household=12.0, variants=variants, rooms=("lab",)
    )
    bank = CaptureBank(config)
    bank.render(workers=1)
    _, events = generate_city(config)
    return config, bank, events


class TestRunCity:
    def test_round_trip_against_a_live_gateway(self, trained_pipeline):
        set_obs_enabled(True)
        _, bank, events = _mini_city()
        assert len(events) >= 20
        stats = run_city_sync(trained_pipeline, bank, events)

        assert stats["errors"] == 0
        assert stats["decisions"] == len(events)
        # Every wire decision matched its precomputed batch verdict.
        assert stats["fingerprint_mismatches"] == 0

        snapshot = monitor_snapshot()
        assert snapshot["decisions"] == len(events)
        # Server-side per-source confusion equals the client's count of
        # the same wire replies — the whole point of threading
        # truth/slices through the protocol.
        assert drive_problems(stats, snapshot) == []
        for source, entry in snapshot["sources"].items():
            tally = stats["per_source"][source]
            assert entry["n"] == tally["n"]

        summary = summary_from_stats(stats, snapshot)
        assert summary["decisions"] == len(events)
        assert summary["events_per_sec"] > 0
        assert set(summary["sources"]) == set(stats["per_source"])
        assert summary["alarms"] == snapshot["alarms"]

    def test_quality_report_round_trip(self, trained_pipeline, tmp_path):
        set_obs_enabled(True)
        _, bank, events = _mini_city()
        run_city_sync(trained_pipeline, bank, events[:10])
        path = obs_monitor.write_quality_report(
            "traffic-test", directory=tmp_path, snapshot=monitor_snapshot()
        )
        document = json.loads(path.read_text())
        assert obs_monitor.validate(document) == []
        assert document["sources"]
        assert set(document["sources"]) <= {e.source for e in events[:10]}
        # Comparing a report against itself passes the gate, including
        # the dynamically added per-source metrics.
        comparison = obs_monitor.compare(document, document)
        assert comparison.ok
        gated = {row.metric for row in comparison.rows}
        for label in document["sources"]:
            assert f"sources.{label}.far" in gated
            assert f"sources.{label}.frr" in gated

    def test_drive_problem_gates(self):
        stats = {
            "events": 5,
            "decisions": 5,
            "errors": 0,
            "fingerprint_mismatches": 0,
            "early_exits": 0,
            "elapsed_s": 1.0,
            "latencies_ms": [1.0] * 5,
            "per_source": {
                "live-facing": {
                    "n": 5, "tp": 5, "fp": 0, "tn": 0, "fn": 0,
                    "latencies_ms": [1.0] * 5,
                }
            },
        }
        snapshot = {
            "sources": {"live-facing": {"tp": 5, "fp": 0, "tn": 0, "fn": 0, "n": 5}},
            "alarms": [],
        }
        assert drive_problems(stats, snapshot, expect_quiet=True) == []
        # --expect-alarms without any alarm names the missing detectors.
        problems = drive_problems(stats, snapshot, expect_alarms=True)
        assert len(problems) == 1
        for detector in ("ks", "page-hinkley", "psi"):
            assert detector in problems[0]
        # A firing alarm breaks --expect-quiet...
        alarmed = dict(snapshot)
        alarmed["alarms"] = [
            {"detector": d, "stream": "liveness_score"}
            for d in ("psi", "ks", "page-hinkley")
        ]
        assert drive_problems(stats, alarmed, expect_quiet=True) != []
        # ...and satisfies --expect-alarms.
        assert drive_problems(stats, alarmed, expect_alarms=True) == []
        # Confusion mismatches and short runs fail regardless.
        assert drive_problems(stats, None, expect_quiet=True) != []
        assert drive_problems(stats, snapshot, min_events=6) != []
        broken = dict(snapshot)
        broken["sources"] = {"live-facing": {"tp": 4, "fp": 1, "tn": 0, "fn": 0}}
        assert drive_problems(stats, broken) != []

    def test_step_clock_exported_with_back_compat_alias(self):
        assert StepClock is _StepClock
        clock = StepClock(10.0)
        assert clock() == 10.0 and clock() == 20.0

    def test_traffic_psi_default_yields_to_explicit_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_MONITOR_PSI", raising=False)
        config = _traffic_monitor_config()
        assert config.psi_threshold == TRAFFIC_PSI_THRESHOLD
        monkeypatch.setenv("REPRO_MONITOR_PSI", "0.2")
        assert _traffic_monitor_config().psi_threshold == 0.2


class _StubArray:
    n_mics = 4
    sample_rate = 48_000


class _StubPipeline:
    array = _StubArray()


async def _http_get(host, port, path):
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.decode("latin-1").split()[1])
    return status, body


def _decision_record(index):
    source = ("live-facing", "loudspeaker")[index % 2]
    accepted = index % 3 == 0
    return {
        "event": "decision",
        "accepted": accepted,
        "reason": "accepted" if accepted else "non-facing",
        "truth": source == "live-facing",
        "slices": {"source": source, "room": "lab"},
        "facing_probability": 0.9 if accepted else 0.2,
        "liveness_score": 0.8,
        "liveness_ms": 1.0,
        "orientation_ms": 1.0,
    }


class TestQualityEndpoint:
    def test_concurrent_scrapes_all_serve_valid_reports(self):
        """/quality stays schema-valid while the monitor is being fed."""

        async def body():
            gateway = ServingGateway(
                _StubPipeline(),
                ServingConfig(port=0, check_liveness=False),
                live_config=LiveConfig(port=0),
            )
            await gateway.start()
            try:
                host, port = gateway.live.address
                monitor = decision_monitor()
                stop = asyncio.Event()

                async def feeder():
                    index = 0
                    while not stop.is_set():
                        monitor.consume(_decision_record(index))
                        index += 1
                        await asyncio.sleep(0)

                feed = asyncio.get_running_loop().create_task(feeder())
                scrape_rounds = await asyncio.gather(
                    *[_scrape_loop(host, port, rounds=5) for _ in range(8)]
                )
                stop.set()
                await feed
            finally:
                await gateway.stop()
            return scrape_rounds

        for documents in asyncio.run(body()):
            for document in documents:
                assert obs_monitor.validate(document) == []
                assert document["name"] == "live"
            final = documents[-1]
            if final["decisions"]:
                assert set(final["sources"]) <= {"live-facing", "loudspeaker"}

    def test_scrape_matches_written_report(self, tmp_path):
        """The endpoint body and QUALITY_*.json carry the same numbers."""

        async def body():
            gateway = ServingGateway(
                _StubPipeline(),
                ServingConfig(port=0, check_liveness=False),
                live_config=LiveConfig(port=0),
            )
            await gateway.start()
            try:
                host, port = gateway.live.address
                monitor = decision_monitor()
                for index in range(40):
                    monitor.consume(_decision_record(index))
                status, payload = await _http_get(host, port, "/quality")
                return status, json.loads(payload)
            finally:
                await gateway.stop()

        status, scraped = asyncio.run(body())
        assert status == 200
        written = json.loads(
            obs_monitor.write_quality_report(
                "scrape", directory=tmp_path, snapshot=monitor_snapshot()
            ).read_text()
        )
        for section in ("decisions", "overall", "sources", "by_reason", "alarms"):
            assert scraped[section] == written[section]


async def _scrape_loop(host, port, rounds):
    documents = []
    for _ in range(rounds):
        status, payload = await _http_get(host, port, "/quality")
        assert status == 200
        documents.append(json.loads(payload))
        await asyncio.sleep(0)
    return documents
