"""API-quality meta-tests: every public item is importable and documented."""

import importlib
import inspect
import pkgutil


import repro

PACKAGES = [
    "repro",
    "repro.arrays",
    "repro.dsp",
    "repro.acoustics",
    "repro.ml",
    "repro.core",
    "repro.datasets",
    "repro.experiments",
    "repro.userstudy",
]


def iter_public_objects():
    for package_name in PACKAGES:
        module = importlib.import_module(package_name)
        exported = getattr(module, "__all__", [])
        for name in exported:
            yield package_name, name, getattr(module, name)


class TestPublicApi:
    def test_all_exports_resolve(self):
        """Every name in __all__ actually exists."""
        for package_name in PACKAGES:
            module = importlib.import_module(package_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{package_name}.{name} missing"

    def test_public_callables_documented(self):
        """Every exported class/function carries a docstring."""
        undocumented = []
        for package_name, name, obj in iter_public_objects():
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{package_name}.{name}")
        assert not undocumented, f"undocumented public API: {undocumented}"

    def test_public_class_methods_documented(self):
        """Public methods of exported classes carry docstrings."""
        undocumented = []
        for package_name, name, obj in iter_public_objects():
            if not inspect.isclass(obj):
                continue
            for method_name, method in inspect.getmembers(obj, inspect.isfunction):
                if method_name.startswith("_"):
                    continue
                if method.__module__ and not method.__module__.startswith("repro"):
                    continue
                if not (method.__doc__ or "").strip():
                    undocumented.append(f"{package_name}.{name}.{method_name}")
        assert not undocumented, f"undocumented methods: {undocumented}"

    def test_every_module_has_docstring(self):
        missing = []
        for _, module_name, _ in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            module = importlib.import_module(module_name)
            if not (module.__doc__ or "").strip():
                missing.append(module_name)
        assert not missing, f"modules without docstrings: {missing}"

    def test_experiment_runners_share_signature(self):
        """Every experiment runner accepts (scale=..., seed=...)."""
        from repro.experiments import ALL_EXPERIMENTS

        for experiment_id, runner in ALL_EXPERIMENTS.items():
            parameters = inspect.signature(runner).parameters
            assert "scale" in parameters, experiment_id
            assert "seed" in parameters, experiment_id
