"""Tests for model persistence."""

import numpy as np
import pytest

from repro.core import FACING, NON_FACING, OrientationDetector
from repro.ml import SVC, StandardScaler
from repro.persistence import load_model, save_model


def trained_detector():
    rng = np.random.default_rng(0)
    X = np.vstack([rng.normal(0, 1, (30, 6)), rng.normal(2, 1, (30, 6))])
    y = np.array([FACING] * 30 + [NON_FACING] * 30)
    return OrientationDetector(backend="svm").fit(X, y), X, y


class TestRoundTrip:
    def test_detector_predictions_survive(self, tmp_path):
        detector, X, y = trained_detector()
        path = save_model(detector, tmp_path / "detector.repro")
        loaded = load_model(path)
        assert np.array_equal(loaded.predict(X), detector.predict(X))
        assert np.allclose(
            loaded.facing_probability(X), detector.facing_probability(X)
        )

    def test_svc_round_trip(self, tmp_path):
        rng = np.random.default_rng(1)
        X = np.vstack([rng.normal(0, 1, (20, 3)), rng.normal(3, 1, (20, 3))])
        y = np.array([0] * 20 + [1] * 20)
        model = SVC().fit(X, y)
        loaded = load_model(save_model(model, tmp_path / "svc.repro"))
        assert np.array_equal(loaded.predict(X), model.predict(X))

    def test_scaler_round_trip(self, tmp_path):
        scaler = StandardScaler().fit(np.random.default_rng(2).normal(3, 2, (40, 4)))
        loaded = load_model(save_model(scaler, tmp_path / "scaler.repro"))
        assert np.allclose(loaded.mean_, scaler.mean_)


class TestFormatGuards:
    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "garbage.bin"
        path.write_bytes(b"not a model at all")
        with pytest.raises(ValueError, match="not a repro model"):
            load_model(path)

    def test_rejects_wrong_format_version(self, tmp_path):
        import pickle

        from repro.persistence import MAGIC

        path = tmp_path / "future.repro"
        with open(path, "wb") as handle:
            handle.write(MAGIC)
            pickle.dump({"format_version": 999, "model": None}, handle)
        with pytest.raises(ValueError, match="format 999"):
            load_model(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_model(tmp_path / "nope.repro")
