"""Tests for microphone-array geometry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrays import MicArray, SPEED_OF_SOUND, circular_positions


def square_array(side: float = 0.1, fs: int = 48_000) -> MicArray:
    half = side / 2
    return MicArray(
        name="square",
        positions=np.array(
            [[half, 0, 0], [0, half, 0], [-half, 0, 0], [0, -half, 0]]
        ),
        sample_rate=fs,
    )


class TestConstruction:
    def test_centers_positions_on_centroid(self):
        array = MicArray("a", np.array([[1.0, 0, 0], [3.0, 0, 0]]))
        assert np.allclose(array.positions.mean(axis=0), 0.0)

    def test_rejects_1d_positions(self):
        with pytest.raises(ValueError, match="shape"):
            MicArray("a", np.array([1.0, 2.0, 3.0]))

    def test_rejects_single_mic(self):
        with pytest.raises(ValueError, match="two microphones"):
            MicArray("a", np.zeros((1, 3)))

    def test_rejects_bad_sample_rate(self):
        with pytest.raises(ValueError, match="sample_rate"):
            MicArray("a", np.zeros((2, 3)), sample_rate=0)

    def test_positions_are_read_only(self):
        array = square_array()
        with pytest.raises(ValueError):
            array.positions[0, 0] = 1.0


class TestPairGeometry:
    def test_pair_count(self):
        assert len(square_array().pairs()) == 6

    def test_pairs_are_ordered(self):
        for i, j in square_array().pairs():
            assert i < j

    def test_aperture_is_diagonal(self):
        array = square_array(side=0.1)
        assert array.aperture == pytest.approx(0.1)

    def test_pair_distance_symmetric_layout(self):
        array = square_array(side=0.1)
        assert array.pair_distance(0, 2) == pytest.approx(0.1)
        assert array.pair_distance(0, 1) == pytest.approx(0.1 / np.sqrt(2))

    def test_max_delay_samples_ceil(self):
        array = square_array(side=0.1, fs=48_000)
        expected = int(np.ceil(0.1 / SPEED_OF_SOUND * 48_000))
        assert array.max_delay_samples() == expected


class TestSubset:
    def test_subset_reduces_channels(self):
        sub = square_array().subset([0, 2])
        assert sub.n_mics == 2

    def test_subset_keeps_relative_geometry(self):
        array = square_array(side=0.1)
        sub = array.subset([0, 2])
        assert sub.aperture == pytest.approx(array.pair_distance(0, 2))

    def test_subset_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            square_array().subset([0, 0])

    def test_subset_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            square_array().subset([0, 9])

    def test_subset_rejects_single_channel(self):
        with pytest.raises(ValueError, match="two channels"):
            square_array().subset([1])

    def test_max_aperture_subset_picks_farthest_pair(self):
        array = square_array()
        picked = array.max_aperture_subset(2)
        assert array.pair_distance(*picked) == pytest.approx(array.aperture)

    def test_max_aperture_subset_full(self):
        assert square_array().max_aperture_subset(4) == [0, 1, 2, 3]

    def test_max_aperture_subset_validates(self):
        with pytest.raises(ValueError):
            square_array().max_aperture_subset(1)
        with pytest.raises(ValueError):
            square_array().max_aperture_subset(9)


class TestSteering:
    def test_equidistant_source_has_equal_delays(self):
        array = square_array()
        delays = array.steering_delays(np.array([0.0, 0.0, 2.0]))
        assert np.allclose(delays, delays[0])

    def test_delay_magnitude(self):
        array = square_array()
        delays = array.steering_delays(np.array([5.0, 0.0, 0.0]))
        assert delays.min() >= (5.0 - 0.1) / SPEED_OF_SOUND
        assert delays.max() <= (5.0 + 0.1) / SPEED_OF_SOUND

    def test_array_position_offset(self):
        array = square_array()
        base = array.steering_delays(np.array([5.0, 0.0, 0.0]))
        shifted = array.steering_delays(
            np.array([6.0, 0.0, 0.0]), array_position=np.array([1.0, 0.0, 0.0])
        )
        assert np.allclose(base, shifted)

    def test_rejects_bad_source_shape(self):
        with pytest.raises(ValueError, match="shape"):
            square_array().steering_delays(np.zeros(2))

    @given(
        x=st.floats(-10, 10),
        y=st.floats(-10, 10),
        z=st.floats(0.2, 3.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_tdoa_bounded_by_aperture(self, x, y, z):
        """|TDoA| can never exceed aperture / c for any source position."""
        array = square_array(side=0.1)
        source = np.array([x, y, z])
        if np.linalg.norm(source) < 0.3:
            return
        for pair in array.pairs():
            tdoa = array.tdoa(source, pair)
            assert abs(tdoa) <= array.aperture / SPEED_OF_SOUND + 1e-12


class TestCircularPositions:
    def test_count_and_radius(self):
        pos = circular_positions(6, radius=0.05)
        assert pos.shape == (6, 3)
        assert np.allclose(np.linalg.norm(pos[:, :2], axis=1), 0.05)

    def test_even_spacing(self):
        pos = circular_positions(4, radius=1.0)
        chord = np.linalg.norm(pos[0] - pos[1])
        assert chord == pytest.approx(np.sqrt(2.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            circular_positions(0, 1.0)
        with pytest.raises(ValueError):
            circular_positions(3, -1.0)
