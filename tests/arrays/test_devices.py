"""Tests for the prototype device geometries (Table I / Figure 7)."""

import numpy as np
import pytest

from repro.arrays import (
    SAMPLE_RATE,
    all_devices,
    default_channel_subset,
    get_device,
    make_d1,
    make_d2,
    make_d3,
)
from repro.dsp import srp_max_lag_for


class TestDeviceGeometry:
    def test_channel_counts_match_table_i(self):
        assert make_d1().n_mics == 7
        assert make_d2().n_mics == 6
        assert make_d3().n_mics == 4

    def test_sample_rate_48khz(self):
        for device in all_devices():
            assert device.sample_rate == SAMPLE_RATE == 48_000

    def test_orthogonal_spacings_match_paper(self):
        assert make_d1().aperture == pytest.approx(0.085, abs=1e-6)
        assert make_d2().aperture == pytest.approx(0.09, abs=1e-6)
        assert make_d3().aperture == pytest.approx(0.065, abs=1e-6)

    def test_srp_windows_match_paper(self):
        """The paper's 25 / 27 / 21-sample SRP windows for D1/D2/D3."""
        windows = {
            "D1": 2 * srp_max_lag_for(make_d1()) + 1,
            "D2": 2 * srp_max_lag_for(make_d2()) + 1,
            "D3": 2 * srp_max_lag_for(make_d3()) + 1,
        }
        assert windows == {"D1": 25, "D2": 27, "D3": 21}

    def test_d1_has_center_mic(self):
        d1 = make_d1()
        radii = np.linalg.norm(d1.positions[:, :2], axis=1)
        assert np.isclose(radii.min(), 0.0, atol=1e-9)


class TestLookup:
    def test_get_device_case_insensitive(self):
        assert get_device("d2").name == "D2"

    def test_get_device_unknown(self):
        with pytest.raises(ValueError, match="unknown device"):
            get_device("D9")

    def test_all_devices_order(self):
        assert [d.name for d in all_devices()] == ["D1", "D2", "D3"]


class TestDefaultSubset:
    def test_d3_uses_all_channels(self):
        assert default_channel_subset(make_d3()) == [0, 1, 2, 3]

    def test_larger_devices_reduced_to_four(self):
        assert len(default_channel_subset(make_d1())) == 4
        assert len(default_channel_subset(make_d2())) == 4

    def test_subset_preserves_near_full_aperture(self):
        """The 4-channel slice must keep the device's full aperture
        (the paper picks channels for greatest inter-mic distance)."""
        for device in (make_d1(), make_d2()):
            sub = device.subset(default_channel_subset(device))
            assert sub.aperture == pytest.approx(device.aperture, rel=1e-9)
