"""Failure injection: degenerate audio and hostile inputs.

A deployed always-on system sees silence, clipping, DC offsets, dropped
channels and absurd configurations; nothing here may crash with an
unhelpful error or, worse, silently accept."""

import numpy as np
import pytest

from repro.acoustics import Capture
from repro.core import (
    REJECT_NO_SPEECH,
    OrientationDetector,
    preprocess,
)
from repro.core.preprocessing import DenoisedAudio
from repro.faults import PRESET_NAMES

FS = 48_000


class TestDegenerateAudio:
    def test_silence_flagged_not_crashed(self):
        capture = Capture(channels=np.zeros((4, FS // 2)), sample_rate=FS)
        audio = preprocess(capture)
        assert not audio.had_speech

    def test_dc_offset_removed(self):
        capture = Capture(channels=np.full((4, FS // 2), 0.7), sample_rate=FS)
        audio = preprocess(capture, normalize=False)
        # The 100 Hz high-pass edge kills DC entirely.
        assert np.abs(audio.channels.mean()) < 1e-3

    def test_clipped_audio_survives(self, extractor, forward_capture):
        clipped = Capture(
            channels=np.clip(forward_capture.channels * 50.0, -1.0, 1.0),
            sample_rate=FS,
        )
        audio = preprocess(clipped)
        features = extractor.extract(audio)
        assert np.all(np.isfinite(features))

    def test_single_sample_spike(self, extractor):
        channels = np.zeros((4, FS // 2))
        channels[:, FS // 4] = 1.0
        audio = preprocess(Capture(channels=channels, sample_rate=FS))
        # A click is "speech" to an energy VAD, but features stay finite.
        features = extractor.extract(audio)
        assert np.all(np.isfinite(features))

    def test_pipeline_rejects_silence_early(self, d2_subset, trained_detector):
        from repro.core import HeadTalkPipeline, LivenessDetector

        pipeline = HeadTalkPipeline(
            array=d2_subset,
            liveness=LivenessDetector(),  # untrained: must never be reached
            orientation=trained_detector,
        )
        silent = Capture(channels=np.zeros((4, FS // 2)), sample_rate=FS)
        decision = pipeline.evaluate(silent)
        assert decision.reason == REJECT_NO_SPEECH


class TestHostileModelInputs:
    def test_detector_rejects_nan_features(self):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((20, 5))
        y = np.array(["facing", "non-facing"] * 10)
        detector = OrientationDetector().fit(X, y)
        bad = X[:1].copy()
        bad[0, 0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            detector.predict(bad)

    def test_detector_rejects_wrong_dimension(self):
        rng = np.random.default_rng(1)
        X = rng.standard_normal((20, 5))
        y = np.array(["facing", "non-facing"] * 10)
        detector = OrientationDetector().fit(X, y)
        with pytest.raises(ValueError, match="features"):
            detector.predict(rng.standard_normal((3, 9)))

    def test_extractor_rejects_wrong_channel_count(self, extractor):
        audio = DenoisedAudio(
            channels=np.random.default_rng(2).standard_normal((7, FS // 4)),
            sample_rate=FS,
            had_speech=True,
        )
        with pytest.raises(ValueError, match="channels"):
            extractor.extract(audio)


class TestInjectedHardwareFaults:
    """The repro.faults models driven through the full gate.

    Whatever a preset scenario does to a capture, the pipeline must
    return a typed decision — decided from the surviving microphone
    pairs when possible, fail-closed otherwise, never an exception.
    """

    @pytest.fixture()
    def pipeline(self, d2_subset, trained_detector):
        from repro.core import HeadTalkPipeline, LivenessDetector

        return HeadTalkPipeline(
            array=d2_subset,
            liveness=LivenessDetector(),  # untrained: liveness is skipped
            orientation=trained_detector,
        )

    @pytest.mark.parametrize("name", sorted(PRESET_NAMES))
    def test_every_preset_yields_typed_decision(self, pipeline, forward_capture, name):
        from repro.core import ACCEPT, REJECT_DEGRADED_INPUT, REJECT_NON_FACING
        from repro.faults import preset_scenario

        corrupted = preset_scenario(name, severity=2.0, seed=1).apply(forward_capture)
        decision = pipeline.evaluate(corrupted, check_liveness=False)
        assert decision.reason in {
            ACCEPT,
            REJECT_NON_FACING,
            REJECT_NO_SPEECH,
            REJECT_DEGRADED_INPUT,
        }

    def test_dead_channel_decided_from_survivors(self, pipeline, forward_capture):
        from repro.core import ACCEPT, REJECT_NON_FACING
        from repro.faults import DeadChannel, FaultScenario

        scenario = FaultScenario(name="dead2", faults=(DeadChannel(channel=2),), seed=0)
        decision = pipeline.evaluate(scenario.apply(forward_capture), check_liveness=False)
        assert decision.degraded
        assert decision.health is not None and 2 in decision.health.dead
        assert decision.reason in (ACCEPT, REJECT_NON_FACING)
