"""Equivalence tests for the runtime layer (cache + batch renderer).

The runtime layer's single invariant: serial, parallel, cold-cache and
warm-cache paths all produce byte-identical captures — and therefore
identical pipeline ``Decision``s.
"""

import numpy as np
import pytest

from repro.datasets import CollectionSpec
from repro.datasets.collection import collect, render_tasks
from repro.runtime import (
    RenderTask,
    cache_stats,
    clear_caches,
    execute_render_task,
    render_captures,
    set_cache_enabled,
    worker_pool,
)

SPEC = CollectionSpec(
    room="lab",
    device="D2",
    wake_word="computer",
    locations=((1.0, 0.0),),
    angles=(0.0, 180.0),
    repetitions=1,
)

NOISE_SPEC = CollectionSpec(
    room="lab",
    device="D2",
    wake_word="computer",
    locations=((1.0, 0.0),),
    angles=(0.0,),
    repetitions=1,
    noise=(("white", 45.0),),
)


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


def _tasks(spec=SPEC):
    return [task for _, task in render_tasks(spec)]


class TestRenderTask:
    def test_reexecution_is_identical(self):
        """Tasks store generator *state*, so they can be re-run."""
        task = _tasks()[0]
        first = execute_render_task(task)
        second = execute_render_task(task)
        assert np.array_equal(first.channels, second.channels)

    def test_matches_inline_collect(self):
        inline = [capture for _, capture in collect(SPEC)]
        from_tasks = [execute_render_task(t) for t in _tasks()]
        for a, b in zip(inline, from_tasks):
            assert np.array_equal(a.channels, b.channels)


class TestSerialParallelEquivalence:
    def test_parallel_bytes_identical(self):
        tasks = _tasks()
        serial = render_captures(tasks, workers=1)
        parallel = render_captures(tasks, workers=2)
        assert len(serial) == len(parallel) == len(tasks)
        for a, b in zip(serial, parallel):
            assert a.sample_rate == b.sample_rate
            assert np.array_equal(a.channels, b.channels)

    def test_parallel_with_interference_identical(self):
        tasks = _tasks(NOISE_SPEC)
        serial = render_captures(tasks, workers=1)
        parallel = render_captures(tasks, workers=2)
        for a, b in zip(serial, parallel):
            assert np.array_equal(a.channels, b.channels)

    def test_collect_workers_identical(self):
        serial = [c.channels for _, c in collect(SPEC, workers=1)]
        parallel = [c.channels for _, c in collect(SPEC, workers=2)]
        for a, b in zip(serial, parallel):
            assert np.array_equal(a, b)

    def test_worker_pool_sets_default(self):
        from repro.runtime import default_workers

        assert default_workers() == 1
        with worker_pool(3):
            assert default_workers() == 3
        assert default_workers() == 1

    def test_malformed_env_warns_once_and_falls_back(self, monkeypatch):
        import warnings

        from repro.runtime import batch

        monkeypatch.setenv("REPRO_RENDER_WORKERS", "two")
        monkeypatch.setattr(batch, "_WARNED_BAD_WORKERS", False)
        with pytest.warns(RuntimeWarning, match="REPRO_RENDER_WORKERS='two'"):
            assert batch.default_workers() == 1
        # The warning is one-time: later calls stay silent (and serial).
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert batch.default_workers() == 1

    def test_empty_and_invalid(self):
        assert render_captures([]) == []
        with pytest.raises(ValueError, match="workers"):
            render_captures(_tasks(), workers=0)


class TestPersistentPool:
    def test_pool_scoped_and_workers_defaulted(self):
        from repro.runtime import active_pool, default_workers, persistent_pool

        assert active_pool() is None
        with persistent_pool(2):
            assert active_pool() is not None
            assert default_workers() == 2
        assert active_pool() is None
        assert default_workers() == 1

    def test_renders_identical_through_reused_pool(self):
        from repro.runtime import persistent_pool

        tasks = _tasks()
        serial = render_captures(tasks, workers=1)
        with persistent_pool(2):
            first = render_captures(tasks, workers=2)
            second = render_captures(tasks)  # workers defaulted by the pool scope
        for a, b, c in zip(serial, first, second):
            assert np.array_equal(a.channels, b.channels)
            assert np.array_equal(a.channels, c.channels)

    def test_requires_at_least_two_workers(self):
        from repro.runtime import persistent_pool

        with pytest.raises(ValueError, match="workers"):
            with persistent_pool(1):
                pass

    def test_broken_pool_never_handed_out(self):
        """A pool that breaks inside the scope is cleared, not re-served."""
        import os

        from concurrent.futures.process import BrokenProcessPool

        from repro.runtime import active_pool, persistent_pool

        tasks = _tasks()
        serial = render_captures(tasks, workers=1)
        with persistent_pool(2) as pool:
            assert active_pool() is pool
            with pytest.raises(BrokenProcessPool):
                pool.submit(os._exit, 1).result()
            assert active_pool() is None
            # Renders keep working: a fresh pool is built transparently.
            pooled = render_captures(tasks)
            for s, p in zip(serial, pooled):
                assert np.array_equal(s.channels, p.channels)
        assert active_pool() is None


class TestColdWarmEquivalence:
    def test_warm_cache_bytes_identical(self):
        tasks = _tasks()
        cold = render_captures(tasks, workers=1)
        stats = cache_stats()
        assert stats["dry"].misses == len(tasks)
        warm = render_captures(tasks, workers=1)
        stats = cache_stats()
        assert stats["dry"].hits == len(tasks)
        for a, b in zip(cold, warm):
            assert np.array_equal(a.channels, b.channels)

    def test_rir_cache_shared_across_emissions(self, lab_scene, speaker):
        """Same scene, different utterances: RIR hits even as dry misses."""
        from tests.conftest import COLLECT_RIR

        tasks = []
        for seed in (1, 2):
            rng = np.random.default_rng(seed)
            emission = speaker.emit("computer", 48_000, rng)
            tasks.append(RenderTask.from_rng(lab_scene, emission, rng, rir_config=COLLECT_RIR))
        render_captures(tasks, workers=1)
        stats = cache_stats()
        assert stats["rir"].hits > 0
        assert stats["dry"].hits == 0 and stats["dry"].misses == 2

    def test_disabled_cache_identical(self):
        tasks = _tasks()
        cached = render_captures(tasks, workers=1)
        clear_caches()
        set_cache_enabled(False)
        try:
            uncached = render_captures(tasks, workers=1)
            stats = cache_stats()
            assert stats["rir"].hits == stats["rir"].misses == 0
        finally:
            set_cache_enabled(True)
        for a, b in zip(cached, uncached):
            assert np.array_equal(a.channels, b.channels)


class TestDecisionEquivalence:
    """Identical Decisions across render paths (satellite 4)."""

    @pytest.fixture()
    def pipeline(self, d2_subset, trained_detector):
        from repro.core import HeadTalkPipeline
        from repro.core.liveness import LivenessDetector

        liveness = LivenessDetector(epochs=1, random_state=0)
        rng = np.random.default_rng(0)
        waveforms = [rng.standard_normal(24_000) for _ in range(4)]
        labels = np.array([0, 1, 0, 1])
        liveness.fit(waveforms, labels, 48_000)
        return HeadTalkPipeline(array=d2_subset, liveness=liveness, orientation=trained_detector)

    def test_all_paths_same_decisions(self, pipeline):
        tasks = _tasks()
        serial_cold = render_captures(tasks, workers=1)
        serial_warm = render_captures(tasks, workers=1)
        parallel = render_captures(tasks, workers=2)

        reference = [pipeline.evaluate(c) for c in serial_cold]
        for captures in (serial_warm, parallel):
            for ref, capture in zip(reference, captures):
                assert pipeline.evaluate(capture).fingerprint() == ref.fingerprint()

        batch = pipeline.evaluate_batch(serial_cold)
        for ref, got in zip(reference, batch):
            assert got.fingerprint() == ref.fingerprint()


class TestShmDispatch:
    """Shared-memory waveform transport must not change a single byte."""

    @pytest.fixture(autouse=True)
    def _restore_shm(self):
        from repro.runtime import set_shm_enabled, shm_enabled

        previous = shm_enabled()
        yield
        set_shm_enabled(previous)

    def test_shm_and_pickled_pool_identical(self):
        from repro.runtime import set_shm_enabled

        tasks = _tasks(NOISE_SPEC)
        serial = render_captures(tasks, workers=1)
        set_shm_enabled(True)
        with_shm = render_captures(tasks, workers=2)
        set_shm_enabled(False)
        without_shm = render_captures(tasks, workers=2)
        for a, b, c in zip(serial, with_shm, without_shm):
            assert a.channels.tobytes() == b.channels.tobytes()
            assert a.channels.tobytes() == c.channels.tobytes()
            assert a.channels.dtype == b.channels.dtype == c.channels.dtype

    def test_no_segments_leak(self):
        import glob

        before = set(glob.glob("/dev/shm/psm_*"))
        render_captures(_tasks(), workers=2)
        after = set(glob.glob("/dev/shm/psm_*"))
        assert after <= before


class TestCacheEnvParsing:
    def test_malformed_cache_size_warns_once_and_falls_back(self, monkeypatch):
        from repro.runtime import cache as cache_mod

        monkeypatch.setattr(cache_mod, "_WARNED_ENV", set())
        monkeypatch.setenv("REPRO_RIR_CACHE_ENTRIES", "lots")
        with pytest.warns(RuntimeWarning, match="REPRO_RIR_CACHE_ENTRIES"):
            assert cache_mod._env_entries("REPRO_RIR_CACHE_ENTRIES", 64) == 64
        import warnings as warnings_mod

        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            assert cache_mod._env_entries("REPRO_RIR_CACHE_ENTRIES", 64) == 64

    def test_unset_uses_default_and_negative_clamps(self, monkeypatch):
        from repro.runtime import cache as cache_mod

        monkeypatch.delenv("REPRO_DRY_CACHE_ENTRIES", raising=False)
        assert cache_mod._env_entries("REPRO_DRY_CACHE_ENTRIES", 128) == 128
        monkeypatch.setenv("REPRO_DRY_CACHE_ENTRIES", "-5")
        assert cache_mod._env_entries("REPRO_DRY_CACHE_ENTRIES", 128) == 0
        monkeypatch.setenv("REPRO_DRY_CACHE_ENTRIES", "16")
        assert cache_mod._env_entries("REPRO_DRY_CACHE_ENTRIES", 128) == 16
