"""Tests for shared-memory waveform transport (``repro.runtime.shm``)."""

import numpy as np
import pytest

from repro.runtime import shm_enabled
from repro.runtime.shm import (
    ShmArrayRef,
    attach,
    dispose,
    pack_arrays,
    read_array,
    set_shm_enabled,
)


@pytest.fixture(autouse=True)
def _restore_enabled():
    previous = shm_enabled()
    yield
    set_shm_enabled(previous)


class TestPackRead:
    def test_roundtrip_is_bit_exact(self):
        rng = np.random.default_rng(7)
        arrays = [
            rng.standard_normal(1000),
            rng.standard_normal((4, 500)),
            np.arange(12, dtype=np.int64).reshape(3, 4),
            rng.standard_normal(100).astype(np.float32),
        ]
        segment, refs = pack_arrays(arrays)
        try:
            assert len(refs) == len(arrays)
            for original, ref in zip(arrays, refs):
                view = read_array(segment, ref)
                assert view.dtype == original.dtype
                assert view.tobytes() == original.tobytes()
        finally:
            dispose(segment)

    def test_views_are_read_only(self):
        segment, refs = pack_arrays([np.zeros(8)])
        try:
            view = read_array(segment, refs[0])
            with pytest.raises(ValueError):
                view[0] = 1.0
        finally:
            dispose(segment)

    def test_attach_by_name_sees_same_bytes(self):
        payload = np.random.default_rng(3).standard_normal((2, 64))
        segment, refs = pack_arrays([payload])
        try:
            other = attach(segment.name)
            try:
                assert read_array(other, refs[0]).tobytes() == payload.tobytes()
            finally:
                other.close()
        finally:
            dispose(segment)

    def test_empty_array_list(self):
        segment, refs = pack_arrays([])
        try:
            assert refs == []
        finally:
            dispose(segment)

    def test_dispose_tolerates_double_call(self):
        segment, _ = pack_arrays([np.zeros(4)])
        dispose(segment)
        dispose(segment)  # already closed + unlinked: must not raise

    def test_ref_nbytes(self):
        ref = ShmArrayRef(offset=0, shape=(4, 500), dtype="<f8")
        assert ref.nbytes == 4 * 500 * 8
        assert ShmArrayRef(offset=0, shape=(), dtype="<f4").nbytes == 4


class TestToggle:
    def test_set_shm_enabled_roundtrip(self):
        set_shm_enabled(False)
        assert not shm_enabled()
        set_shm_enabled(True)
        assert shm_enabled()
