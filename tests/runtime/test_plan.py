"""Tests for the per-geometry decision-plan cache (``repro.runtime.plan``)."""

import numpy as np
import pytest

from repro.arrays import MicArray, get_device
from repro.dsp import srp_max_lag_for, steering_pair_lags
from repro.dsp.gcc import _fft_length
from repro.runtime import clear_plans, plan_for, plan_stats


@pytest.fixture(autouse=True)
def _fresh_plans():
    clear_plans()
    yield
    clear_plans()


class TestPlanFor:
    def test_plan_matches_array_facts(self):
        array = get_device("D2")
        plan = plan_for(array)
        assert plan.pairs == tuple(array.pairs())
        assert plan.max_lag == srp_max_lag_for(array)
        assert plan.window == 2 * plan.max_lag + 1
        assert plan.min_samples == 4 * (plan.max_lag + 1)
        assert plan.pair_list == array.pairs()

    def test_memoized_per_geometry(self):
        array = get_device("D1")
        first = plan_for(array)
        again = plan_for(array)
        assert first is again
        stats = plan_stats()
        assert stats.misses == 1
        assert stats.hits == 1

    def test_identical_coordinates_share_a_plan(self):
        raw = np.array([[-0.05, 0.0, 0.0], [0.0, 0.0, 0.0], [0.05, 0.0, 0.0], [0.0, 0.05, 0.0]])
        first = MicArray("one-name", raw, sample_rate=48_000)
        second = MicArray("other-name", raw, sample_rate=48_000)
        assert plan_for(first) is plan_for(second)

    def test_different_geometries_get_distinct_plans(self):
        assert plan_for(get_device("D2")) is not plan_for(get_device("D3"))

    def test_subset_gets_its_own_plan(self):
        d2 = get_device("D2")
        subset = d2.subset([0, 1, 3, 4])
        assert plan_for(subset) is not plan_for(d2)
        assert plan_for(subset).max_lag == srp_max_lag_for(subset)

    def test_clear_plans_resets(self):
        plan_for(get_device("D3"))
        clear_plans()
        assert plan_stats().misses == 0
        assert plan_stats().hits == 0


class TestArrayPlanMemos:
    def test_fft_length_matches_dsp(self):
        plan = plan_for(get_device("D3"))
        for n in (100, 4800, 4801):
            assert plan.fft_length(n) == _fft_length(2 * n, plan.max_lag)
        # memo hit returns the same value
        assert plan.fft_length(4800) == _fft_length(2 * 4800, plan.max_lag)

    def test_steering_lags_match_dsp(self):
        array = get_device("D2")
        plan = plan_for(array)
        source = np.array([1.0, 2.0, 0.5])
        expected = steering_pair_lags(array, source, array.pairs())
        got = plan.steering_lags(source)
        assert np.array_equal(got, expected)

    def test_steering_lags_cached_and_read_only(self):
        plan = plan_for(get_device("D2"))
        source = np.array([1.0, 2.0, 0.5])
        first = plan.steering_lags(source)
        second = plan.steering_lags(source)
        assert first is second
        assert not first.flags.writeable

    def test_steering_lags_with_array_position(self):
        array = get_device("D2")
        plan = plan_for(array)
        source = np.array([1.0, 2.0, 0.5])
        origin = np.array([0.5, 0.5, 0.0])
        expected = steering_pair_lags(array, source, array.pairs(), origin)
        assert np.array_equal(plan.steering_lags(source, origin), expected)
