"""ServingConfig env knobs: overrides apply, malformed values warn once."""

import warnings

import pytest

from repro.obs import control as obs_control
from repro.serving.config import ServingConfig


@pytest.fixture(autouse=True)
def fresh_warn_state(monkeypatch):
    """Each test sees a process that has not warned yet."""
    monkeypatch.setattr(obs_control, "_WARNED", set())


def _collect(action):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = action()
    return result, [w for w in caught if issubclass(w.category, RuntimeWarning)]


class TestDefaults:
    def test_defaults_are_valid(self):
        config = ServingConfig()
        assert config.frame_length == 2048
        assert config.hop_length == 2048
        assert config.max_sessions >= 1
        assert config.port == 0

    def test_from_env_without_env_is_defaults(self):
        config, warned = _collect(ServingConfig.from_env)
        assert config == ServingConfig()
        assert warned == []

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"frame_length": 0},
            {"min_frames": 0},
            {"check_every": 0},
            {"consecutive": 0},
            {"facing_margin": -0.1},
            {"max_sessions": 0},
            {"ring_seconds": 0.0},
        ],
    )
    def test_direct_construction_validates(self, kwargs):
        with pytest.raises(ValueError):
            ServingConfig(**kwargs)


class TestEnvOverrides:
    def test_overrides_apply(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVING_FRAME", "1024")
        monkeypatch.setenv("REPRO_SERVING_HOP", "512")
        monkeypatch.setenv("REPRO_SERVING_MIN_FRAMES", "6")
        monkeypatch.setenv("REPRO_SERVING_MAX_SESSIONS", "32")
        monkeypatch.setenv("REPRO_SERVING_FACING_MARGIN", "0.2")
        monkeypatch.setenv("REPRO_SERVING_HOST", "0.0.0.0")
        monkeypatch.setenv("REPRO_SERVING_PORT", "8099")
        config, warned = _collect(ServingConfig.from_env)
        assert config.frame_length == 1024
        assert config.hop_length == 512
        assert config.min_frames == 6
        assert config.max_sessions == 32
        assert config.facing_margin == 0.2
        assert config.host == "0.0.0.0"
        assert config.port == 8099
        assert warned == []

    def test_malformed_value_warns_once_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVING_MAX_SESSIONS", "lots")
        config, warned = _collect(ServingConfig.from_env)
        assert config.max_sessions == ServingConfig().max_sessions
        assert len(warned) == 1
        assert "REPRO_SERVING_MAX_SESSIONS" in str(warned[0].message)
        # Second read in the same process: silent, same fallback.
        config2, warned2 = _collect(ServingConfig.from_env)
        assert config2.max_sessions == config.max_sessions
        assert warned2 == []

    def test_malformed_float_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVING_RING_SECONDS", "a while")
        config, warned = _collect(ServingConfig.from_env)
        assert config.ring_seconds == ServingConfig().ring_seconds
        assert len(warned) == 1

    def test_parseable_but_invalid_combination_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVING_FRAME", "-5")
        config, warned = _collect(ServingConfig.from_env)
        assert config == ServingConfig()
        assert len(warned) == 1
        assert "invalid REPRO_SERVING_" in str(warned[0].message)

    def test_empty_value_is_ignored_silently(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVING_FRAME", "")
        config, warned = _collect(ServingConfig.from_env)
        assert config.frame_length == ServingConfig().frame_length
        assert warned == []
