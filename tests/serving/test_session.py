"""DeviceSession: the controller's state machine under a streamed lifecycle."""

import pytest

from repro.serving import DeviceSession, ServingConfig, SessionError

CHUNK = 2048


@pytest.fixture(scope="module")
def config():
    return ServingConfig(check_liveness=False)


def _feed(session, capture, chunk=CHUNK):
    events = []
    channels = capture.channels
    for start in range(0, channels.shape[1], chunk):
        event = session.push_audio(channels[:, start : start + chunk])
        if event is not None:
            events.append(event)
    return events


class TestGatedLifecycle:
    def test_rejected_wake_soft_mutes(self, trained_pipeline, backward_capture, config):
        session = DeviceSession("s1", trained_pipeline, config)
        wake = session.begin_wake(now=0.0)
        assert wake["gated"] is True
        events = _feed(session, backward_capture)
        assert len(events) == 1 and events[0]["event"] == "early"
        decision = session.end_wake(now=0.0)
        assert decision["kind"] == "soft-muted"
        assert decision["accepted"] is False
        assert decision["early"] is True
        assert decision["frames_to_decision"] < decision["frames_seen"]
        batch = trained_pipeline.evaluate(backward_capture, check_liveness=False)
        assert decision["fingerprint"] == list(batch.fingerprint())
        assert not session.controller.session_open_at(0.0)

    def test_accepted_wake_opens_session(self, trained_pipeline, forward_capture, config):
        session = DeviceSession("s2", trained_pipeline, config)
        session.begin_wake(now=0.0)
        assert _feed(session, forward_capture) == []
        decision = session.end_wake(now=0.0)
        assert decision["kind"] == "uploaded"
        assert decision["accepted"] is True
        assert decision["early"] is False
        assert session.controller.session_open_at(10.0)
        # A follow-up command inside the session uploads without a gate.
        followup = session.followup(now=10.0)
        assert followup["kind"] == "session-command"

    def test_in_session_wake_skips_the_gate(self, trained_pipeline, forward_capture, config):
        session = DeviceSession("s3", trained_pipeline, config)
        session.begin_wake(now=0.0)
        _feed(session, forward_capture)
        assert session.end_wake(now=0.0)["accepted"] is True
        wake = session.begin_wake(now=1.0)
        assert wake["gated"] is False
        _feed(session, forward_capture)
        decision = session.end_wake(now=1.0)
        assert decision["gated"] is False
        assert decision["kind"] == "session-command"
        # After the session window expires, the gate is back.
        expired = session.begin_wake(now=1000.0)
        assert expired["gated"] is True
        _feed(session, forward_capture)
        assert session.end_wake(now=1000.0)["gated"] is True

    def test_ring_overflow_is_reported_not_fatal(self, trained_pipeline, forward_capture):
        tiny = ServingConfig(check_liveness=False, ring_seconds=0.2)
        session = DeviceSession("s4", trained_pipeline, tiny)
        session.begin_wake(now=0.0)
        _feed(session, forward_capture)
        decision = session.end_wake(now=0.0)
        assert decision["dropped_samples"] > 0
        assert decision["fingerprint"] is not None


class TestModes:
    def test_mute_hard_blocks(self, trained_pipeline, forward_capture, config):
        session = DeviceSession("s5", trained_pipeline, config)
        assert session.mute(now=0.0)["mode"] == "mute"
        wake = session.begin_wake(now=1.0)
        assert wake["gated"] is False
        _feed(session, forward_capture)
        decision = session.end_wake(now=1.0)
        assert decision["kind"] == "hard-muted"
        assert decision["accepted"] is None
        assert decision["fingerprint"] is None

    def test_voice_command_switches_modes(self, trained_pipeline, config):
        session = DeviceSession("s6", trained_pipeline, config)
        assert session.command("exit headtalk mode", now=0.0)["mode"] == "normal"
        assert session.command("enter headtalk mode", now=1.0)["mode"] == "headtalk"
        with pytest.raises(SessionError):
            session.command("make me a sandwich", now=2.0)

    def test_normal_mode_uploads_ungated(self, trained_pipeline, forward_capture, config):
        from repro.core import Mode

        session = DeviceSession("s7", trained_pipeline, config, mode=Mode.NORMAL)
        wake = session.begin_wake(now=0.0)
        assert wake["gated"] is False
        _feed(session, forward_capture)
        decision = session.end_wake(now=0.0)
        assert decision["kind"] == "uploaded"
        assert decision["gated"] is False


class TestLifecycleErrors:
    def test_audio_outside_wake(self, trained_pipeline, forward_capture, config):
        session = DeviceSession("s8", trained_pipeline, config)
        with pytest.raises(SessionError):
            session.push_audio(forward_capture.channels[:, :CHUNK])

    def test_end_without_wake(self, trained_pipeline, config):
        session = DeviceSession("s9", trained_pipeline, config)
        with pytest.raises(SessionError):
            session.end_wake(now=0.0)

    def test_double_wake(self, trained_pipeline, config):
        session = DeviceSession("s10", trained_pipeline, config)
        session.begin_wake(now=0.0)
        with pytest.raises(SessionError):
            session.begin_wake(now=0.0)

    def test_close_abandons_the_utterance(self, trained_pipeline, forward_capture, config):
        session = DeviceSession("s11", trained_pipeline, config)
        session.begin_wake(now=0.0)
        session.push_audio(forward_capture.channels[:, :CHUNK])
        session.close()
        assert not session.streaming
        with pytest.raises(SessionError):
            session.end_wake(now=0.0)
