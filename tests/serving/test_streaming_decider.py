"""Streaming-vs-batch equivalence: the PR's core contract.

Every tier-1 fixture capture, streamed chunk by chunk through
``StreamingDecider``, must produce a final decision byte-identical to
``pipeline.evaluate`` on the same capture — early exit may shorten
latency (frames_to_decision), never flip verdicts.
"""

import numpy as np
import pytest

from repro.acoustics import Capture
from repro.core import REJECT_DEGRADED_INPUT, REJECT_MECHANICAL, StreamingDecider

FS = 48_000
CHUNK = 2048


def _stream(decider, channels, chunk=CHUNK):
    """Push channels through in fixed-size chunks; collect early events."""
    events = []
    for start in range(0, channels.shape[1], chunk):
        event = decider.push(channels[:, start : start + chunk])
        if event is not None:
            events.append(event)
    return events, decider.finish()


@pytest.fixture(scope="module")
def pipeline(trained_pipeline):
    return trained_pipeline


CAPTURES = ["forward_capture", "backward_capture", "replay_capture", "side_capture"]


class TestEquivalence:
    @pytest.mark.parametrize("name", CAPTURES)
    def test_streaming_fingerprint_equals_batch(self, request, pipeline, name):
        capture = request.getfixturevalue(name)
        batch = pipeline.evaluate(capture)
        decider = StreamingDecider(pipeline)
        _, result = _stream(decider, capture.channels)
        assert result.decision.fingerprint() == batch.fingerprint()

    @pytest.mark.parametrize("name", CAPTURES)
    def test_early_verdict_never_flips_the_decision(self, request, pipeline, name):
        capture = request.getfixturevalue(name)
        decider = StreamingDecider(pipeline)
        events, result = _stream(decider, capture.channels)
        assert result.consistent
        for event in events:
            assert not event.accepted
            assert event.accepted == result.decision.accepted or not result.decision.accepted

    @pytest.mark.parametrize("chunk", [2048, 1000, 4096, 333])
    def test_chunk_size_never_changes_the_outcome(self, pipeline, backward_capture, chunk):
        reference = pipeline.evaluate(backward_capture)
        decider = StreamingDecider(pipeline)
        events, result = _stream(decider, backward_capture.channels, chunk=chunk)
        assert result.decision.fingerprint() == reference.fingerprint()
        assert result.early_exited


class TestEarlyExit:
    def test_forward_accept_never_exits_early(self, pipeline, forward_capture):
        decider = StreamingDecider(pipeline)
        events, result = _stream(decider, forward_capture.channels)
        assert result.decision.accepted
        assert not result.early_exited
        assert events == []
        assert result.frames_to_decision == result.frames_seen

    @pytest.mark.parametrize("name", ["backward_capture", "side_capture"])
    def test_non_facing_rejected_before_end_of_utterance(self, request, pipeline, name):
        capture = request.getfixturevalue(name)
        decider = StreamingDecider(pipeline)
        events, result = _stream(decider, capture.channels)
        assert not result.decision.accepted
        assert result.early_exited
        assert len(events) == 1
        assert result.frames_to_decision < result.frames_seen
        assert result.frames_to_decision == events[0].frame

    def test_replay_rejected_early_as_mechanical(self, pipeline, replay_capture):
        decider = StreamingDecider(pipeline)
        events, result = _stream(decider, replay_capture.channels)
        assert result.early_exited
        assert events[0].reason == REJECT_MECHANICAL
        assert result.frames_to_decision < result.frames_seen

    def test_early_frame_is_chunk_invariant(self, pipeline, backward_capture):
        frames = set()
        for chunk in (2048, 1000, 4096, 333):
            decider = StreamingDecider(pipeline)
            _, result = _stream(decider, backward_capture.channels, chunk=chunk)
            assert result.early_exited
            frames.add(result.frames_to_decision)
        assert len(frames) == 1

    def test_median_frames_to_decision_shortens_rejections(
        self, pipeline, backward_capture, replay_capture, side_capture
    ):
        to_decision, seen = [], []
        for capture in (backward_capture, replay_capture, side_capture):
            decider = StreamingDecider(pipeline)
            _, result = _stream(decider, capture.channels)
            to_decision.append(result.frames_to_decision)
            seen.append(result.frames_seen)
        assert float(np.median(to_decision)) < float(np.median(seen))


class TestLifecycle:
    def test_finish_is_idempotent(self, pipeline, forward_capture):
        decider = StreamingDecider(pipeline)
        _stream(decider, forward_capture.channels)
        assert decider.finish() is decider.finish()

    def test_push_after_finish_raises(self, pipeline, forward_capture):
        decider = StreamingDecider(pipeline)
        _, _ = _stream(decider, forward_capture.channels)
        with pytest.raises(RuntimeError):
            decider.push(forward_capture.channels[:, :CHUNK])

    def test_wrong_shape_rejected(self, pipeline):
        decider = StreamingDecider(pipeline)
        with pytest.raises(ValueError):
            decider.push(np.zeros((2, CHUNK)))

    def test_empty_stream_still_decides(self, pipeline):
        decider = StreamingDecider(pipeline)
        result = decider.finish()
        assert not result.decision.accepted
        assert result.frames_seen == 0


class TestMidStreamChannelDeath:
    def test_majority_channel_death_fails_closed(self, pipeline, forward_capture):
        channels = forward_capture.channels
        decider = StreamingDecider(pipeline)
        half = channels.shape[1] // 2
        events = []
        for start in range(0, half, CHUNK):
            event = decider.push(channels[:, start : start + CHUNK])
            assert event is None or not event.accepted
        # Three of four channels die mid-utterance.
        for start in range(half, channels.shape[1], CHUNK):
            chunk = channels[:, start : start + CHUNK].copy()
            chunk[1:, :] = 0.0
            event = decider.push(chunk)
            if event is not None:
                events.append(event)
        assert events, "channel death never fired an early verdict"
        assert events[0].reason == REJECT_DEGRADED_INPUT
        result = decider.finish()
        assert not result.decision.accepted
        assert result.decision.reason == REJECT_DEGRADED_INPUT
        assert result.decision.degraded
        assert result.consistent

    def test_single_dead_channel_degrades_without_failing_closed(self, pipeline, forward_capture):
        channels = forward_capture.channels.copy()
        channels[2, :] = 0.0
        decider = StreamingDecider(pipeline)
        events, result = _stream(decider, channels)
        assert events == []  # early checks are suspended while degraded
        assert decider.degraded
        assert not decider.fail_closed
        # The final verdict is still the batch verdict on the same
        # capture: the full pipeline masks the dead channel itself.
        batch = pipeline.evaluate(Capture(channels=channels, sample_rate=FS))
        assert result.decision.fingerprint() == batch.fingerprint()
