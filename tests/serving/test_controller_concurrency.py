"""Controller under concurrency: whole-event audit logs, no double gating.

The controller is the shared mutable state behind every serving
session.  These tests drive it from many threads at once and assert the
two properties the serving layer depends on:

- audit records are an interleaving of *whole* events — the JSONL sink
  never contains a torn or interleaved line, and the in-memory log has
  exactly one entry per applied operation;
- an open HEADTALK session is never re-gated — wake words inside the
  facing-verified window must not call ``pipeline.evaluate`` again.
"""

import json
import os
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ACCEPT, REJECT_NON_FACING, Mode, VoiceAssistantController
from repro.core.config import HeadTalkConfig
from repro.core.pipeline import Decision
from repro.obs import audit_log, configure_audit, set_obs_enabled
from repro.obs.control import obs_enabled


class _StubPipeline:
    """A pipeline whose verdict is fixed and whose calls are counted."""

    def __init__(self, accepted=True):
        self.config = HeadTalkConfig()
        self.accepted = accepted
        self.evaluations = 0
        self._lock = threading.Lock()

    def evaluate(self, capture, check_liveness=True, **kwargs):
        with self._lock:
            self.evaluations += 1
        if self.accepted:
            return Decision(True, ACCEPT, 0.9, 0.9, 0.0, 0.0)
        return Decision(False, REJECT_NON_FACING, 0.9, 0.1, 0.0, 0.0)


def _accept():
    return Decision(True, ACCEPT, 0.9, 0.9, 0.0, 0.0)


def _reject():
    return Decision(False, REJECT_NON_FACING, 0.9, 0.1, 0.0, 0.0)


def _run_threads(workers):
    threads = [threading.Thread(target=w) for w in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


@pytest.fixture
def audit_sink(tmp_path):
    """Route audit records to a temp JSONL file, restoring the default."""
    path = tmp_path / "audit.jsonl"
    was_enabled = obs_enabled()
    configure_audit(str(path))
    set_obs_enabled(True)
    yield path
    set_obs_enabled(was_enabled)
    audit_log().clear()
    configure_audit(os.environ.get("REPRO_AUDIT_LOG") or None)


class TestAuditAtomicity:
    N_THREADS = 8
    OPS_PER_THREAD = 25

    def test_interleaved_events_never_tear_audit_records(self, audit_sink):
        controller = VoiceAssistantController(pipeline=_StubPipeline(), mode=Mode.HEADTALK)
        start = threading.Barrier(self.N_THREADS)

        def worker(k):
            def run():
                start.wait()
                for i in range(self.OPS_PER_THREAD):
                    now = float(k * 1000 + i)
                    op = (k + i) % 3
                    if op == 0:
                        controller.on_wake_decision(_accept() if i % 2 else _reject(), now)
                    elif op == 1:
                        controller.on_followup_audio(now)
                    else:
                        controller.press_mute_button(now)

            return run

        _run_threads([worker(k) for k in range(self.N_THREADS)])

        expected = self.N_THREADS * self.OPS_PER_THREAD
        assert len(controller.audit_log) == expected
        lines = audit_sink.read_text().splitlines()
        assert len(lines) == expected
        for line in lines:
            record = json.loads(line)  # a torn line would fail to parse
            assert record["event"] == "gate"
            assert "kind" in record

    def test_mute_races_keep_mode_consistent(self):
        controller = VoiceAssistantController(pipeline=_StubPipeline(), mode=Mode.HEADTALK)
        start = threading.Barrier(6)

        def toggler():
            start.wait()
            for i in range(40):
                controller.press_mute_button(float(i))

        _run_threads([toggler] * 6)
        # 240 toggles from HEADTALK: first lands in MUTE, then NORMAL/MUTE
        # alternation — never back to HEADTALK, never a torn mode.
        assert controller.mode in (Mode.NORMAL, Mode.MUTE)
        assert len(controller.audit_log) == 240


class TestSessionGating:
    def test_open_session_is_never_regated(self, forward_capture):
        pipeline = _StubPipeline(accepted=True)
        controller = VoiceAssistantController(pipeline=pipeline, mode=Mode.HEADTALK)
        # Open the facing-verified session without spending an evaluation.
        controller.on_wake_decision(_accept(), now=0.0)
        assert pipeline.evaluations == 0
        start = threading.Barrier(8)
        kinds = []
        kinds_lock = threading.Lock()

        def worker():
            start.wait()
            for _ in range(10):
                event = controller.on_wake_word(forward_capture, now=10.0)
                with kinds_lock:
                    kinds.append(event.kind.value)

        _run_threads([worker] * 8)
        assert pipeline.evaluations == 0
        assert kinds == ["session-command"] * 80

    def test_expired_session_gates_again(self, forward_capture):
        pipeline = _StubPipeline(accepted=False)
        controller = VoiceAssistantController(pipeline=pipeline, mode=Mode.HEADTALK)
        controller.on_wake_decision(_accept(), now=0.0)
        expiry = pipeline.config.session_seconds + 1.0
        event = controller.on_wake_word(forward_capture, now=expiry)
        assert pipeline.evaluations == 1
        assert event.kind.value == "soft-muted"


# Operation alphabet for the property test: (name, needs_decision)
_OPS = st.sampled_from(["wake-accept", "wake-reject", "followup", "mute"])


class TestPropertyInterleavings:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(plans=st.lists(st.lists(_OPS, min_size=1, max_size=6), min_size=2, max_size=4))
    def test_any_interleaving_logs_every_op_exactly_once(self, plans):
        controller = VoiceAssistantController(pipeline=_StubPipeline(), mode=Mode.HEADTALK)
        start = threading.Barrier(len(plans))

        def worker(plan, base):
            def run():
                start.wait()
                for i, op in enumerate(plan):
                    now = float(base * 100 + i)
                    if op == "wake-accept":
                        controller.on_wake_decision(_accept(), now)
                    elif op == "wake-reject":
                        controller.on_wake_decision(_reject(), now)
                    elif op == "followup":
                        controller.on_followup_audio(now)
                    else:
                        controller.press_mute_button(now)

            return run

        _run_threads([worker(plan, k) for k, plan in enumerate(plans)])
        assert len(controller.audit_log) == sum(len(p) for p in plans)
        # Every logged event is internally consistent: its mode is a
        # real mode and its kind is from the audit alphabet.
        for event in controller.audit_log:
            assert event.mode in Mode
            assert event.kind.value in {
                "uploaded",
                "soft-muted",
                "hard-muted",
                "session-command",
                "mode-change",
            }
