"""ServingGateway: the wire protocol end to end over real sockets."""

import asyncio
import json

from repro.serving import ServingConfig, ServingGateway
from repro.serving.replay import (
    _recv,
    _send,
    close_session,
    encode_chunk,
    open_session,
    stream_capture,
    stream_utterance,
)

CONFIG = ServingConfig(check_liveness=False)


async def _with_gateway(pipeline, body, config=CONFIG):
    gateway = ServingGateway(pipeline, config)
    await gateway.start()
    try:
        host, port = gateway.address
        return await body(gateway, host, port)
    finally:
        await gateway.stop()


class TestRoundTrip:
    def test_rejection_streams_early_then_decides(self, trained_pipeline, backward_capture):
        async def body(gateway, host, port):
            return await stream_capture(host, port, backward_capture)

        out = asyncio.run(_with_gateway(trained_pipeline, body))
        assert out["hello"]["event"] == "hello"
        assert out["hello"]["n_mics"] == trained_pipeline.array.n_mics
        assert out["wake"]["gated"] is True
        assert out["early"] is not None
        # The early event was pushed before the decision event.
        kinds = [e.get("event") for e in out["events"]]
        assert kinds.index("early") < kinds.index("decision")
        decision = out["decision"]
        assert decision["kind"] == "soft-muted"
        assert decision["early"] is True
        batch = trained_pipeline.evaluate(backward_capture, check_liveness=False)
        assert decision["fingerprint"] == list(batch.fingerprint())

    def test_acceptance_has_no_early_event(self, trained_pipeline, forward_capture):
        async def body(gateway, host, port):
            return await stream_capture(host, port, forward_capture)

        out = asyncio.run(_with_gateway(trained_pipeline, body))
        assert out["early"] is None
        assert out["decision"]["accepted"] is True
        assert out["decision"]["kind"] == "uploaded"
        batch = trained_pipeline.evaluate(forward_capture, check_liveness=False)
        assert out["decision"]["fingerprint"] == list(batch.fingerprint())

    def test_sessions_are_cleaned_up(self, trained_pipeline, forward_capture):
        async def body(gateway, host, port):
            await stream_capture(host, port, forward_capture)
            # The handler's finally block races the client-side close.
            for _ in range(50):
                if not gateway.sessions:
                    break
                await asyncio.sleep(0.01)
            return dict(gateway.sessions)

        assert asyncio.run(_with_gateway(trained_pipeline, body)) == {}


class TestAdmission:
    def test_busy_rejection_at_max_sessions(self, trained_pipeline):
        config = ServingConfig(check_liveness=False, max_sessions=1)

        async def body(gateway, host, port):
            reader, writer, hello = await open_session(host, port)
            assert hello["event"] == "hello"
            _, writer2, refused = await open_session(host, port)
            writer2.close()
            await close_session(writer)
            # Once the slot frees up, new connections are admitted again.
            for _ in range(50):
                if not gateway.sessions:
                    break
                await asyncio.sleep(0.01)
            reader3, writer3, hello3 = await open_session(host, port)
            await close_session(writer3)
            return refused, hello3

        refused, hello3 = asyncio.run(_with_gateway(trained_pipeline, body, config))
        assert refused["error"] == "busy"
        assert refused["max_sessions"] == 1
        assert hello3["event"] == "hello"


class TestProtocolErrors:
    def test_errors_keep_the_connection_usable(self, trained_pipeline, forward_capture):
        async def body(gateway, host, port):
            reader, writer, hello = await open_session(host, port)
            replies = []

            async def roundtrip(raw_line):
                writer.write(raw_line)
                await writer.drain()
                replies.append(await _recv(reader))

            await roundtrip(b"this is not json\n")
            await roundtrip(b'["an", "array"]\n')
            await roundtrip(json.dumps({"op": "warp"}).encode() + b"\n")
            # Lifecycle misuse: audio and end outside an open wake.
            chunk = encode_chunk(forward_capture.channels[:, :2048])
            await roundtrip(json.dumps({"op": "audio", "pcm": chunk}).encode() + b"\n")
            await roundtrip(json.dumps({"op": "end"}).encode() + b"\n")
            # Malformed payloads inside a wake.
            await _send(writer, {"op": "wake"})
            await _recv(reader)
            await roundtrip(json.dumps({"op": "audio", "pcm": "@@@"}).encode() + b"\n")
            await roundtrip(json.dumps({"op": "audio", "pcm": "AAAA"}).encode() + b"\n")
            await roundtrip(json.dumps({"op": "audio"}).encode() + b"\n")
            await roundtrip(json.dumps({"op": "end", "truth": "yes"}).encode() + b"\n")
            await _send(writer, {"op": "end"})
            await _recv(reader)  # empty utterance still yields a decision
            # The same connection then carries a clean utterance.
            out = await stream_utterance(reader, writer, forward_capture)
            await close_session(writer)
            return replies, out

        replies, out = asyncio.run(_with_gateway(trained_pipeline, body))
        assert all("error" in reply for reply in replies)
        assert replies[0]["error"] == "malformed-json"
        assert replies[1]["error"] == "malformed-json"
        assert replies[2]["error"] == "unknown-op:warp"
        assert out["decision"]["accepted"] is True

    def test_close_op_closes_the_connection(self, trained_pipeline):
        async def body(gateway, host, port):
            reader, writer, hello = await open_session(host, port)
            await _send(writer, {"op": "close"})
            line = await reader.readline()
            writer.close()
            return line

        assert asyncio.run(_with_gateway(trained_pipeline, body)) == b""


class TestModesOverTheWire:
    def test_mute_and_command_ops(self, trained_pipeline):
        async def body(gateway, host, port):
            reader, writer, hello = await open_session(host, port)
            await _send(writer, {"op": "mute"})
            muted = await _recv(reader)
            await _send(writer, {"op": "mute"})
            unmuted = await _recv(reader)
            await _send(writer, {"op": "command", "text": "exit headtalk mode"})
            normal = await _recv(reader)
            await _send(writer, {"op": "command", "text": "sudo rm -rf"})
            refused = await _recv(reader)
            await _send(writer, {"op": "followup"})
            followup = await _recv(reader)
            await close_session(writer)
            return muted, unmuted, normal, refused, followup

        muted, unmuted, normal, refused, followup = asyncio.run(
            _with_gateway(trained_pipeline, body)
        )
        assert muted["mode"] == "mute"
        assert unmuted["mode"] == "normal"
        assert normal["mode"] == "normal"
        assert "error" in refused
        assert followup["kind"] == "uploaded"  # NORMAL mode uploads follow-ups
