"""RingBuffer: bounded per-session store with bit-exact snapshots."""

import numpy as np
import pytest

from repro.serving import RingBuffer

RNG = np.random.default_rng(11)


class TestRingBuffer:
    def test_snapshot_is_bit_identical_to_the_stream(self):
        ring = RingBuffer(3, 10_000)
        chunks = [RNG.standard_normal((3, n)) for n in (700, 1, 2048, 333)]
        for chunk in chunks:
            assert ring.append(chunk) == 0
        assert np.array_equal(ring.snapshot(), np.concatenate(chunks, axis=1))
        assert ring.length == sum(c.shape[1] for c in chunks)
        assert not ring.overflowed

    def test_overflow_drops_newest_and_counts(self):
        ring = RingBuffer(2, 1000)
        head = RNG.standard_normal((2, 800))
        tail = RNG.standard_normal((2, 500))
        assert ring.append(head) == 0
        assert ring.append(tail) == 300
        assert ring.dropped == 300
        assert ring.overflowed
        assert ring.length == 1000
        # The stored head is intact; only the newest samples were lost.
        assert np.array_equal(ring.snapshot()[:, :800], head)
        assert np.array_equal(ring.snapshot()[:, 800:], tail[:, :200])

    def test_storage_grows_lazily(self):
        ring = RingBuffer(4, 1_000_000)
        assert ring._store.shape[1] < 1_000_000
        ring.append(np.zeros((4, 50_000)))
        assert ring.length == 50_000
        assert ring._store.shape[1] < 1_000_000

    def test_prefix_is_a_view_of_the_head(self):
        ring = RingBuffer(2, 5000)
        chunk = RNG.standard_normal((2, 3000))
        ring.append(chunk)
        assert np.array_equal(ring.prefix(1000), chunk[:, :1000])
        assert ring.prefix(9999).shape == (2, 3000)

    def test_clear_reuses_allocation(self):
        ring = RingBuffer(2, 5000)
        ring.append(RNG.standard_normal((2, 4000)))
        store = ring._store
        ring.clear()
        assert ring.length == 0
        assert ring.dropped == 0
        assert ring._store is store

    def test_shape_validation(self):
        ring = RingBuffer(2, 100)
        with pytest.raises(ValueError):
            ring.append(np.zeros((3, 10)))
        with pytest.raises(ValueError):
            RingBuffer(0, 100)
        with pytest.raises(ValueError):
            RingBuffer(2, 0)
