"""RingBuffer: bounded per-session store with bit-exact snapshots."""

import numpy as np
import pytest

from repro.serving import RingBuffer

RNG = np.random.default_rng(11)


class TestRingBuffer:
    def test_snapshot_is_bit_identical_to_the_stream(self):
        ring = RingBuffer(3, 10_000)
        chunks = [RNG.standard_normal((3, n)) for n in (700, 1, 2048, 333)]
        for chunk in chunks:
            assert ring.append(chunk) == 0
        assert np.array_equal(ring.snapshot(), np.concatenate(chunks, axis=1))
        assert ring.length == sum(c.shape[1] for c in chunks)
        assert not ring.overflowed

    def test_overflow_drops_newest_and_counts(self):
        ring = RingBuffer(2, 1000)
        head = RNG.standard_normal((2, 800))
        tail = RNG.standard_normal((2, 500))
        assert ring.append(head) == 0
        assert ring.append(tail) == 300
        assert ring.dropped == 300
        assert ring.overflowed
        assert ring.length == 1000
        # The stored head is intact; only the newest samples were lost.
        assert np.array_equal(ring.snapshot()[:, :800], head)
        assert np.array_equal(ring.snapshot()[:, 800:], tail[:, :200])

    def test_storage_grows_lazily(self):
        ring = RingBuffer(4, 1_000_000)
        assert ring._store.shape[1] < 1_000_000
        ring.append(np.zeros((4, 50_000)))
        assert ring.length == 50_000
        assert ring._store.shape[1] < 1_000_000

    def test_prefix_is_a_view_of_the_head(self):
        ring = RingBuffer(2, 5000)
        chunk = RNG.standard_normal((2, 3000))
        ring.append(chunk)
        assert np.array_equal(ring.prefix(1000), chunk[:, :1000])
        assert ring.prefix(9999).shape == (2, 3000)

    def test_clear_reuses_allocation(self):
        ring = RingBuffer(2, 5000)
        ring.append(RNG.standard_normal((2, 4000)))
        store = ring._store
        ring.clear()
        assert ring.length == 0
        assert ring.dropped == 0
        assert ring._store is store

    def test_interleaved_appends_and_reads_keep_dropped_exact(self):
        """Satellite: dropped accounting under writer/reader interleaving.

        Snapshots and prefixes between appends must neither perturb the
        stored head nor the dropped counter: the counter equals the
        exact sample deficit at every step, and the head stays
        bit-identical to the first ``capacity`` streamed samples.
        """
        capacity = 1500
        ring = RingBuffer(2, capacity)
        streamed = []
        expected_dropped = 0
        for k, n in enumerate((400, 700, 1, 600, 250, 2048)):
            chunk = RNG.standard_normal((2, n))
            streamed.append(chunk)
            fed = sum(c.shape[1] for c in streamed)
            lost = ring.append(chunk)
            expected_dropped = max(0, fed - capacity)
            assert ring.dropped == expected_dropped
            assert lost == min(n, max(0, fed - capacity) - max(0, fed - n - capacity))
            # Reader interleaves: reads are pure.
            head = ring.prefix(min(64, ring.length)).copy()
            snap = ring.snapshot()
            assert np.array_equal(snap[:, : head.shape[1]], head)
            whole = np.concatenate(streamed, axis=1)
            assert np.array_equal(snap, whole[:, : ring.length])
        assert ring.overflowed

    def test_dropped_resets_per_utterance_via_clear(self):
        ring = RingBuffer(2, 100)
        ring.append(RNG.standard_normal((2, 150)))
        assert ring.dropped == 50
        ring.clear()
        assert ring.dropped == 0 and not ring.overflowed
        ring.append(RNG.standard_normal((2, 30)))
        assert ring.dropped == 0
        ring.append(RNG.standard_normal((2, 90)))
        assert ring.dropped == 20

    def test_concurrent_reader_never_sees_torn_state(self):
        """A reader thread polling occupancy/dropped (the live probe's view)
        sees only values consistent with some prefix of the write stream."""
        import threading

        capacity = 10_000
        ring = RingBuffer(1, capacity)
        stop = threading.Event()
        observed = []

        def reader():
            while not stop.is_set():
                length, dropped = ring.length, ring.dropped
                observed.append((length, dropped))

        thread = threading.Thread(target=reader)
        thread.start()
        total = 0
        try:
            for _ in range(200):
                n = int(RNG.integers(1, 400))
                ring.append(np.zeros((1, n)))
                total += n
        finally:
            stop.set()
            thread.join()
        assert ring.length == min(total, capacity)
        assert ring.dropped == max(0, total - capacity)
        for length, dropped in observed:
            assert 0 <= length <= capacity
            assert dropped >= 0

    def test_shape_validation(self):
        ring = RingBuffer(2, 100)
        with pytest.raises(ValueError):
            ring.append(np.zeros((3, 10)))
        with pytest.raises(ValueError):
            RingBuffer(0, 100)
        with pytest.raises(ValueError):
            RingBuffer(2, 0)
