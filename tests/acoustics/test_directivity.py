"""Tests for the frequency-dependent directivity model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acoustics import (
    DirectivityModel,
    departure_angle,
    facing_vector_from_angle,
    human_head_directivity,
    loudspeaker_directivity,
)


class TestModelValidation:
    def test_frequency_ordering(self):
        with pytest.raises(ValueError):
            DirectivityModel(omni_below_hz=5000, directional_above_hz=1000)

    def test_floor_range(self):
        with pytest.raises(ValueError):
            DirectivityModel(rear_floor=1.5)

    def test_sharpness_positive(self):
        with pytest.raises(ValueError):
            DirectivityModel(max_sharpness=0.0)


class TestGainShape:
    def test_forward_gain_is_unity(self):
        model = human_head_directivity()
        assert model.gain(4000.0, 0.0) == pytest.approx(1.0, abs=1e-9)

    def test_low_frequency_nearly_omni(self):
        model = human_head_directivity()
        rear = float(model.gain(150.0, np.pi))
        assert rear > 0.9

    def test_high_frequency_strongly_directional(self):
        model = human_head_directivity()
        rear = float(model.gain(8000.0, np.pi))
        assert rear < 0.15

    def test_monotone_in_angle_at_high_frequency(self):
        model = human_head_directivity()
        angles = np.linspace(0, np.pi, 19)
        gains = model.gain(6000.0, angles)
        assert np.all(np.diff(gains) <= 1e-12)

    def test_directionality_monotone_in_frequency(self):
        """Rear attenuation must deepen as frequency rises."""
        model = human_head_directivity()
        freqs = np.array([200.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0])
        rear = model.gain(freqs, np.pi)
        assert np.all(np.diff(rear) <= 1e-12)

    def test_band_gain_uses_geometric_center(self):
        model = human_head_directivity()
        assert model.band_gain((1000.0, 4000.0), 0.5) == pytest.approx(
            float(model.gain(2000.0, 0.5)), rel=1e-9
        )

    @given(
        freq=st.floats(50, 20_000),
        angle=st.floats(0, np.pi),
    )
    @settings(max_examples=60, deadline=None)
    def test_gain_always_in_unit_interval(self, freq, angle):
        for model in (human_head_directivity(), loudspeaker_directivity()):
            g = float(model.gain(freq, angle))
            assert 0.0 < g <= 1.0 + 1e-12

    def test_loudspeaker_differs_from_head(self):
        head = human_head_directivity()
        box = loudspeaker_directivity()
        assert head.gain(6000.0, np.pi) != box.gain(6000.0, np.pi)


class TestGeometryHelpers:
    def test_departure_angle_straight_ahead(self):
        angle = departure_angle(
            np.zeros(3), np.array([1.0, 0, 0]), np.array([5.0, 0, 0])
        )
        assert angle == pytest.approx(0.0)

    def test_departure_angle_behind(self):
        angle = departure_angle(
            np.zeros(3), np.array([1.0, 0, 0]), np.array([-5.0, 0, 0])
        )
        assert angle == pytest.approx(np.pi)

    def test_coincident_target(self):
        assert departure_angle(np.zeros(3), np.array([1.0, 0, 0]), np.zeros(3)) == 0.0

    def test_zero_facing_vector_rejected(self):
        with pytest.raises(ValueError):
            departure_angle(np.zeros(3), np.zeros(3), np.ones(3))

    def test_facing_vector_unit_norm(self):
        for angle in (0.0, 45.0, 180.0):
            v = facing_vector_from_angle(angle)
            assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_facing_vector_at_zero_points_to_device(self):
        v = facing_vector_from_angle(0.0)
        assert np.allclose(v, [-1.0, 0.0, 0.0])
