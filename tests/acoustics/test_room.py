"""Tests for the shoebox room model."""

import numpy as np
import pytest

from repro.acoustics import (
    FOOT,
    Material,
    Room,
    get_room,
    home_room,
    lab_room,
)


class TestMaterial:
    def test_interpolates_on_log_axis(self):
        material = Material(
            name="m", band_centers_hz=(125.0, 500.0), absorption=(0.1, 0.4)
        )
        mid = material.absorption_at(250.0)
        assert 0.1 < mid < 0.4
        # 250 Hz is the log midpoint of 125 and 500.
        assert mid == pytest.approx(0.25, abs=0.01)

    def test_clamps_outside_range(self):
        material = Material(
            name="m", band_centers_hz=(125.0, 500.0), absorption=(0.1, 0.4)
        )
        assert material.absorption_at(20.0) == pytest.approx(0.1)
        assert material.absorption_at(20_000.0) == pytest.approx(0.4)

    def test_reflection_relation(self):
        material = Material(
            name="m", band_centers_hz=(125.0, 500.0), absorption=(0.19, 0.19)
        )
        assert material.reflection_at(250.0) == pytest.approx(np.sqrt(0.81))

    def test_validation(self):
        with pytest.raises(ValueError):
            Material("m", (125.0,), (0.1, 0.2))
        with pytest.raises(ValueError):
            Material("m", (125.0, 500.0), (0.0, 0.2))


class TestRoom:
    def test_volume_and_surface(self):
        room = Room("box", (2.0, 3.0, 4.0), lab_room().material)
        assert room.volume == 24.0
        assert room.surface_area == 2 * (6 + 8 + 12)

    def test_contains(self):
        room = lab_room()
        assert room.contains(np.array([1.0, 1.0, 1.0]))
        assert not room.contains(np.array([-0.1, 1.0, 1.0]))
        assert not room.contains(np.array([1.0, 1.0, 1.0]), margin=2.0)

    def test_contains_validates_shape(self):
        with pytest.raises(ValueError):
            lab_room().contains(np.zeros(2))

    def test_eyring_below_sabine(self):
        """Eyring's -ln(1-a) > a, so Eyring RT < Sabine RT."""
        room = lab_room()
        for freq in (125.0, 1000.0, 4000.0):
            assert room.eyring_rt60(freq) < room.sabine_rt60(freq)

    def test_rt60_decreases_with_frequency_in_lab(self):
        """Lab absorption rises with frequency, so RT60 falls."""
        room = lab_room()
        assert room.eyring_rt60(4000.0) < room.eyring_rt60(125.0)

    def test_plausible_rt60_range(self):
        for room in (lab_room(), home_room()):
            rt = room.eyring_rt60(1000.0)
            assert 0.1 < rt < 1.5

    def test_home_more_reverberant_than_lab(self):
        assert home_room().eyring_rt60(1000.0) > lab_room().eyring_rt60(1000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Room("bad", (0.0, 1.0, 1.0), lab_room().material)
        with pytest.raises(ValueError):
            Room("bad", (1.0, 1.0, 1.0), lab_room().material, ambient_noise_db_spl=200)


class TestPaperRooms:
    def test_lab_dimensions_match_paper(self):
        room = lab_room()
        assert room.dimensions[0] == pytest.approx(20 * FOOT)
        assert room.dimensions[1] == pytest.approx(14 * FOOT)
        assert room.dimensions[2] == pytest.approx(10 * FOOT)
        assert room.ambient_noise_db_spl == 33.0

    def test_home_dimensions_match_paper(self):
        room = home_room()
        assert room.dimensions == (33 * FOOT, 10 * FOOT, 8 * FOOT)
        assert room.ambient_noise_db_spl == 43.0

    def test_get_room(self):
        assert get_room("LAB").name == "lab"
        with pytest.raises(ValueError):
            get_room("garage")
