"""Tests for end-to-end capture rendering."""

import numpy as np
import pytest

from repro.acoustics import (
    Capture,
    NoiseSource,
    RirConfig,
    SpeakerPose,
    render_capture,
    rms_to_spl,
)
from repro.dsp import estimate_tdoa, srp_max_lag_for


class TestCapture:
    def test_properties(self):
        capture = Capture(channels=np.zeros((4, 9600)), sample_rate=48_000)
        assert capture.n_mics == 4
        assert capture.n_samples == 9600
        assert capture.duration == pytest.approx(0.2)

    def test_channel_subset(self):
        capture = Capture(channels=np.arange(12.0).reshape(3, 4), sample_rate=48_000)
        sub = capture.channel_subset([0, 2])
        assert sub.n_mics == 2
        assert np.array_equal(sub.channels[1], capture.channels[2])

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            Capture(channels=np.zeros(100), sample_rate=48_000)


class TestRenderCapture:
    def test_channel_count_and_rate(self, lab_scene, speaker, forward_capture):
        assert forward_capture.n_mics == lab_scene.device.n_mics
        assert forward_capture.sample_rate == 48_000

    def test_rate_mismatch_rejected(self, lab_scene, speaker):
        rng = np.random.default_rng(0)
        emission = speaker.emit("computer", 16_000, rng)
        with pytest.raises(ValueError, match="Hz"):
            render_capture(lab_scene, emission, rng=rng)

    def test_tdoa_matches_geometry(self, lab_scene, speaker, forward_capture):
        """Inter-mic delays in the rendered audio match the scene geometry."""
        array = lab_scene.device
        max_lag = srp_max_lag_for(array)
        source = lab_scene.source_position
        origin = lab_scene.placement.position
        for pair in array.pairs()[:3]:
            geometric = array.tdoa(source, pair, origin)
            estimated = estimate_tdoa(
                forward_capture.channels[pair[0]],
                forward_capture.channels[pair[1]],
                max_lag,
                48_000,
            )
            assert estimated == pytest.approx(geometric, abs=1.5 / 48_000)

    def test_forward_louder_than_backward(self, forward_capture, backward_capture):
        rms_f = np.sqrt(np.mean(forward_capture.channels**2))
        rms_b = np.sqrt(np.mean(backward_capture.channels**2))
        assert rms_f > rms_b

    def test_louder_speech_raises_level(self, lab_scene, speaker):
        rng = np.random.default_rng(5)
        emission = speaker.emit("computer", 48_000, rng)
        config = RirConfig(max_order=1)
        quiet = render_capture(lab_scene, emission, loudness_db_spl=60.0, rng=np.random.default_rng(1), rir_config=config)
        loud = render_capture(lab_scene, emission, loudness_db_spl=80.0, rng=np.random.default_rng(1), rir_config=config)
        ratio = np.sqrt(np.mean(loud.channels**2) / np.mean(quiet.channels**2))
        assert ratio == pytest.approx(10.0, rel=0.25)

    def test_noise_floor_when_quiet_source(self, lab_scene, speaker):
        """With a 0-SPL-ish source, the capture is dominated by ambient."""
        rng = np.random.default_rng(6)
        emission = speaker.emit("computer", 48_000, rng)
        capture = render_capture(
            lab_scene,
            emission,
            loudness_db_spl=1.0,
            rng=rng,
            rir_config=RirConfig(max_order=0, include_tail=False),
            ambient=NoiseSource(kind="white", level_db_spl=45.0),
        )
        measured = rms_to_spl(float(np.sqrt(np.mean(capture.channels**2))))
        assert measured == pytest.approx(45.0, abs=2.0)

    def test_extra_noise_raises_floor(self, lab_scene, speaker):
        rng = np.random.default_rng(7)
        emission = speaker.emit("computer", 48_000, rng)
        config = RirConfig(max_order=1)
        scene = lab_scene.with_pose(SpeakerPose(distance_m=3.0))
        clean = render_capture(scene, emission, rng=np.random.default_rng(2), rir_config=config)
        noisy = render_capture(
            scene,
            emission,
            rng=np.random.default_rng(2),
            rir_config=config,
            extra_noise=(NoiseSource(kind="white", level_db_spl=60.0),),
        )
        assert np.mean(noisy.channels**2) > 1.3 * np.mean(clean.channels**2)

    def test_deterministic_given_rng(self, lab_scene, speaker):
        emission = speaker.emit("computer", 48_000, np.random.default_rng(8))
        config = RirConfig(max_order=1, tail_seed=3)
        a = render_capture(lab_scene, emission, rng=np.random.default_rng(9), rir_config=config)
        b = render_capture(lab_scene, emission, rng=np.random.default_rng(9), rir_config=config)
        assert np.array_equal(a.channels, b.channels)
