"""Tests for noise generation and SPL calibration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acoustics import (
    NoiseSource,
    REFERENCE_DB_SPL,
    household_noise,
    pink_noise,
    rms_to_spl,
    scale_to_spl,
    spl_to_rms,
    tv_babble_noise,
    white_noise,
)

FS = 48_000


class TestSplCalibration:
    def test_reference_point(self):
        assert spl_to_rms(REFERENCE_DB_SPL) == pytest.approx(1.0)

    def test_roundtrip(self):
        for spl in (20.0, 45.0, 70.0, 94.0):
            assert rms_to_spl(spl_to_rms(spl)) == pytest.approx(spl)

    def test_plus_20db_is_10x(self):
        assert spl_to_rms(70.0) / spl_to_rms(50.0) == pytest.approx(10.0)

    def test_zero_rms(self):
        assert rms_to_spl(0.0) == float("-inf")

    @given(st.floats(10.0, 110.0))
    @settings(max_examples=40, deadline=None)
    def test_scale_to_spl_hits_target(self, spl):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(5000)
        scaled = scale_to_spl(x, spl)
        measured = np.sqrt(np.mean(scaled**2))
        assert rms_to_spl(measured) == pytest.approx(spl, abs=1e-6)

    def test_scale_silent_input_unchanged(self):
        assert np.array_equal(scale_to_spl(np.zeros(10), 70.0), np.zeros(10))


class TestGenerators:
    def test_lengths(self):
        rng = np.random.default_rng(0)
        for gen in (white_noise, pink_noise, tv_babble_noise, household_noise):
            assert gen(4800, FS, rng).size == 4800
            assert gen(0, FS, rng).size == 0

    def test_pink_noise_spectrum_tilts_down(self):
        rng = np.random.default_rng(1)
        x = pink_noise(1 << 16, FS, rng)
        spectrum = np.abs(np.fft.rfft(x)) ** 2
        freqs = np.fft.rfftfreq(x.size, 1 / FS)
        low = spectrum[(freqs > 100) & (freqs < 300)].mean()
        high = spectrum[(freqs > 8000) & (freqs < 12_000)].mean()
        assert low > 10 * high

    def test_white_noise_spectrum_flat(self):
        rng = np.random.default_rng(2)
        x = white_noise(1 << 16, FS, rng)
        spectrum = np.abs(np.fft.rfft(x)) ** 2
        freqs = np.fft.rfftfreq(x.size, 1 / FS)
        low = spectrum[(freqs > 100) & (freqs < 2000)].mean()
        high = spectrum[(freqs > 10_000) & (freqs < 20_000)].mean()
        assert low / high == pytest.approx(1.0, rel=0.3)

    def test_tv_babble_spectrum_is_speech_like(self):
        """Most energy in the speech band, plus real sibilant energy in
        the 4-10 kHz band (unlike pure low-passed babble)."""
        rng = np.random.default_rng(3)
        x = tv_babble_noise(FS, FS, rng)
        spectrum = np.abs(np.fft.rfft(x)) ** 2
        freqs = np.fft.rfftfreq(x.size, 1 / FS)
        speech = spectrum[(freqs > 150) & (freqs < 3800)].sum()
        sibilant = spectrum[(freqs > 4000) & (freqs < 10_000)].sum()
        far_out = spectrum[freqs > 14_000].sum()
        assert speech > sibilant  # speech band still dominates
        assert sibilant > 10 * far_out  # but sibilance is present

    def test_household_has_mains_hum(self):
        rng = np.random.default_rng(4)
        x = household_noise(FS, FS, rng)
        spectrum = np.abs(np.fft.rfft(x)) ** 2
        freqs = np.fft.rfftfreq(x.size, 1 / FS)
        hum_bin = np.argmin(np.abs(freqs - 120.0))
        neighborhood = spectrum[hum_bin - 50 : hum_bin + 50].mean()
        assert spectrum[hum_bin] > 5 * neighborhood


class TestNoiseSource:
    def test_render_calibrated(self):
        source = NoiseSource(kind="white", level_db_spl=45.0)
        x = source.render(FS // 2, FS, np.random.default_rng(0))
        assert rms_to_spl(np.sqrt(np.mean(x**2))) == pytest.approx(45.0, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseSource(kind="jet-engine", level_db_spl=45.0)
        with pytest.raises(ValueError):
            NoiseSource(kind="white", level_db_spl=300.0)
