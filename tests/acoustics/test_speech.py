"""Tests for the wake-word synthesizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acoustics import (
    Phone,
    VocalProfile,
    WAKE_WORDS,
    canonical_wake_word,
    random_profile,
    synthesize_wake_word,
    utterance_duration,
)
from repro.dsp import mean_power_spectrum

FS = 48_000


class TestPhone:
    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            Phone("whistle", 0.1, ())
        with pytest.raises(ValueError, match="duration"):
            Phone("voiced", 0.0, (500.0,))


class TestVocalProfile:
    def test_plausibility_bounds(self):
        with pytest.raises(ValueError):
            VocalProfile(f0=20.0)
        with pytest.raises(ValueError):
            VocalProfile(tract_scale=2.0)
        with pytest.raises(ValueError):
            VocalProfile(tempo=0.0)

    def test_random_profiles_differ(self):
        rng = np.random.default_rng(0)
        a, b = random_profile(rng), random_profile(rng)
        assert a != b

    @given(st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_random_profiles_always_valid(self, seed):
        profile = random_profile(np.random.default_rng(seed))
        assert 50.0 <= profile.f0 <= 400.0


class TestWakeWords:
    def test_canonicalization(self):
        assert canonical_wake_word("Computer") == "computer"
        assert canonical_wake_word("Hey Assistant!") == "hey assistant"

    def test_unknown_word(self):
        with pytest.raises(ValueError, match="unknown wake word"):
            canonical_wake_word("jarvis")

    def test_all_words_defined(self):
        assert set(WAKE_WORDS) == {"computer", "amazon", "hey assistant"}


class TestSynthesis:
    def test_normalized_peak(self):
        audio = synthesize_wake_word("computer", VocalProfile(), FS, np.random.default_rng(0))
        assert np.abs(audio).max() == pytest.approx(1.0)

    def test_duration_matches_inventory(self):
        profile = VocalProfile(tempo=1.0)
        audio = synthesize_wake_word("computer", profile, FS, np.random.default_rng(0))
        expected = utterance_duration("computer", profile)
        assert audio.size / FS == pytest.approx(expected, rel=0.3)

    def test_repetitions_differ(self):
        rng = np.random.default_rng(0)
        a = synthesize_wake_word("amazon", VocalProfile(), FS, rng)
        b = synthesize_wake_word("amazon", VocalProfile(), FS, rng)
        assert a.size != b.size or not np.allclose(a[: b.size], b[: a.size])

    def test_deterministic_given_seed(self):
        a = synthesize_wake_word("computer", VocalProfile(), FS, np.random.default_rng(7))
        b = synthesize_wake_word("computer", VocalProfile(), FS, np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_pitch_shows_up_in_spectrum(self):
        """A 120 Hz talker must put harmonic energy near multiples of f0."""
        profile = VocalProfile(f0=120.0, jitter=0.001)
        audio = synthesize_wake_word("computer", profile, FS, np.random.default_rng(1))
        freqs, power = mean_power_spectrum(audio, FS, frame_length=4096)
        voiced_region = power[(freqs > 80) & (freqs < 500)]
        assert voiced_region.max() > 100 * np.median(power[freqs > 10_000])

    def test_has_high_frequency_energy(self):
        """Live speech keeps structured energy above 4 kHz (Fig. 3a)."""
        audio = synthesize_wake_word("computer", VocalProfile(), FS, np.random.default_rng(2))
        freqs, power = mean_power_spectrum(audio, FS)
        above = power[(freqs > 4000) & (freqs < 12_000)].sum()
        assert above > 0
        total = power.sum()
        assert above / total > 1e-4

    def test_female_profile_higher_f0_energy(self):
        low = VocalProfile(f0=100.0)
        high = VocalProfile(f0=240.0)
        rng = np.random.default_rng(3)
        a_low = synthesize_wake_word("amazon", low, FS, rng)
        a_high = synthesize_wake_word("amazon", high, FS, rng)
        def centroid(x):
            freqs, power = mean_power_spectrum(x, FS)
            mask = freqs < 1000
            return float(np.sum(freqs[mask] * power[mask]) / np.sum(power[mask]))
        assert centroid(a_high) > centroid(a_low)

    def test_all_words_render(self):
        rng = np.random.default_rng(4)
        for word in WAKE_WORDS:
            audio = synthesize_wake_word(word, VocalProfile(), FS, rng)
            assert audio.size > FS // 10
            assert np.all(np.isfinite(audio))

    def test_tempo_shortens_utterance(self):
        slow = VocalProfile(tempo=0.8)
        fast = VocalProfile(tempo=1.3)
        assert utterance_duration("computer", fast) < utterance_duration("computer", slow)
