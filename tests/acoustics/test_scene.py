"""Tests for scene geometry and occlusion."""

import numpy as np
import pytest

from repro.acoustics import (
    ANGLE_GRID_DEG,
    FULL_BLOCK,
    HOME_PLACEMENT,
    LAB_PLACEMENTS,
    NO_OCCLUSION,
    PARTIAL_BLOCK,
    DevicePlacement,
    Occlusion,
    Scene,
    SpeakerPose,
    home_room,
    lab_room,
    raised_placement,
    rotate_xy,
)
from repro.arrays import get_device


@pytest.fixture()
def base_scene():
    return Scene(
        room=lab_room(),
        device=get_device("D3"),
        placement=LAB_PLACEMENTS["A"],
        pose=SpeakerPose(distance_m=3.0),
    )


class TestRotate:
    def test_quarter_turn(self):
        v = rotate_xy(np.array([1.0, 0.0, 0.5]), 90.0)
        assert np.allclose(v, [0.0, 1.0, 0.5], atol=1e-12)

    def test_z_preserved(self):
        v = rotate_xy(np.array([1.0, 2.0, 3.0]), 37.0)
        assert v[2] == 3.0


class TestPose:
    def test_grid_labels(self):
        assert SpeakerPose(3.0, radial_deg=0.0).grid_label == "M3"
        assert SpeakerPose(1.0, radial_deg=-15.0).grid_label == "L1"
        assert SpeakerPose(5.0, radial_deg=15.0).grid_label == "R5"

    def test_validation(self):
        with pytest.raises(ValueError):
            SpeakerPose(distance_m=0.0)
        with pytest.raises(ValueError):
            SpeakerPose(distance_m=1.0, mouth_height=0.0)

    def test_angle_grid_has_14_angles(self):
        assert len(ANGLE_GRID_DEG) == 14
        assert set(ANGLE_GRID_DEG) >= {0.0, 180.0, 90.0, -90.0}


class TestSceneGeometry:
    def test_source_distance(self, base_scene):
        horizontal = np.linalg.norm(
            base_scene.source_position[:2] - base_scene.placement.position[:2]
        )
        assert horizontal == pytest.approx(3.0)

    def test_source_height_is_mouth(self, base_scene):
        assert base_scene.source_position[2] == base_scene.pose.mouth_height

    def test_facing_zero_points_at_device(self, base_scene):
        to_device = base_scene.placement.position - base_scene.source_position
        to_device[2] = 0
        to_device /= np.linalg.norm(to_device)
        assert np.allclose(base_scene.facing_vector, to_device, atol=1e-9)

    def test_facing_180_points_away(self, base_scene):
        flipped = base_scene.with_pose(SpeakerPose(distance_m=3.0, head_angle_deg=180.0))
        assert np.allclose(flipped.facing_vector, -base_scene.facing_vector, atol=1e-9)

    def test_facing_is_unit(self, base_scene):
        for angle in (0.0, 45.0, 135.0):
            scene = base_scene.with_pose(SpeakerPose(3.0, head_angle_deg=angle))
            assert np.linalg.norm(scene.facing_vector) == pytest.approx(1.0)

    def test_mic_positions_offset_by_placement(self, base_scene):
        centroid = base_scene.mic_positions.mean(axis=0)
        assert np.allclose(centroid, base_scene.placement.position, atol=1e-12)

    def test_rejects_speaker_outside_room(self):
        with pytest.raises(ValueError, match="outside"):
            Scene(
                room=lab_room(),
                device=get_device("D3"),
                placement=LAB_PLACEMENTS["A"],
                pose=SpeakerPose(distance_m=50.0),
            )

    def test_home_placement_fits_grid(self):
        scene = Scene(
            room=home_room(),
            device=get_device("D2"),
            placement=HOME_PLACEMENT,
            pose=SpeakerPose(distance_m=5.0, radial_deg=15.0),
        )
        assert scene.room.contains(scene.source_position)

    def test_with_occlusion(self, base_scene):
        blocked = base_scene.with_occlusion(FULL_BLOCK)
        assert blocked.occlusion.name == "full"
        assert base_scene.occlusion is NO_OCCLUSION


class TestOcclusion:
    def test_band_gains_monotone_decreasing(self):
        bands = [(125.0, 250.0), (500.0, 1000.0), (4000.0, 8000.0)]
        gains = PARTIAL_BLOCK.band_gains(bands)
        assert np.all(np.diff(gains) <= 0)

    def test_open_has_unit_gains(self):
        bands = [(125.0, 250.0), (4000.0, 8000.0)]
        assert np.allclose(NO_OCCLUSION.band_gains(bands), 1.0)

    def test_full_blocks_more_than_partial(self):
        bands = [(2000.0, 4000.0)]
        assert FULL_BLOCK.band_gains(bands)[0] < PARTIAL_BLOCK.band_gains(bands)[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            Occlusion("bad", lf_gain=0.2, hf_gain=0.5)
        with pytest.raises(ValueError):
            Occlusion("bad", lf_gain=0.5, hf_gain=0.2, lf_hz=5000, hf_hz=100)


class TestPlacement:
    def test_paper_heights(self):
        assert LAB_PLACEMENTS["A"].height == 0.74
        assert LAB_PLACEMENTS["B"].height == 0.45
        assert LAB_PLACEMENTS["C"].height == 0.75
        assert HOME_PLACEMENT.height == 0.83

    def test_raised_placement(self):
        raised = raised_placement(LAB_PLACEMENTS["A"])
        assert raised.height == pytest.approx(0.74 + 0.148)
        with pytest.raises(ValueError):
            raised_placement(LAB_PLACEMENTS["A"], extra_height=0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DevicePlacement("x", (0.0, 0.0), height=0.0)
