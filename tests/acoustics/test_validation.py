"""Closing the loop: rendered RIRs must match the room's predictions."""

import numpy as np
import pytest

from repro.acoustics import (
    RirConfig,
    home_room,
    human_head_directivity,
    lab_room,
    render_band_rirs,
)
from repro.acoustics.validation import (
    critical_distance,
    direct_to_reverberant_ratio_db,
    measure_rt60,
    schroeder_decay,
)

FS = 48_000


def rendered_rir(room, facing=(1.0, 0.0, 0.0), tail_seconds=0.5, band=(500.0, 1000.0)):
    source = np.array([2.0, 1.5, 1.5])
    mics = np.array([[3.5, 1.5, 0.8]])
    rirs = render_band_rirs(
        room=room,
        source_position=source,
        facing=np.asarray(facing),
        directivity=human_head_directivity(),
        mic_positions=mics,
        sample_rate=FS,
        bands=[band],
        config=RirConfig(max_order=2, tail_max_seconds=tail_seconds, tail_seed=5),
        rng=np.random.default_rng(0),
    )
    return rirs[0, 0]


def synthetic_exponential_rir(rt60: float, seconds: float = 1.0, seed: int = 0):
    rng = np.random.default_rng(seed)
    t = np.arange(int(FS * seconds)) / FS
    return rng.standard_normal(t.size) * 10.0 ** (-3.0 * t / rt60)


class TestSchroeder:
    def test_decay_starts_at_zero_and_falls(self):
        decay = schroeder_decay(synthetic_exponential_rir(0.4))
        assert decay[0] == pytest.approx(0.0, abs=1e-9)
        assert np.all(np.diff(decay) <= 1e-9)

    def test_known_rt60_recovered(self):
        for rt60 in (0.2, 0.5):
            measured = measure_rt60(synthetic_exponential_rir(rt60, seconds=2 * rt60), FS)
            assert measured == pytest.approx(rt60, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            schroeder_decay(np.array([]))
        with pytest.raises(ValueError):
            schroeder_decay(np.zeros(100))
        with pytest.raises(ValueError):
            measure_rt60(synthetic_exponential_rir(0.3), FS, fit_range_db=(-25.0, -5.0))


class TestRenderedRoomAcoustics:
    def test_rendered_rt60_matches_eyring(self):
        """The simulator's tail must decay at the room's predicted rate."""
        room = lab_room()
        predicted = room.eyring_rt60(float(np.sqrt(500.0 * 1000.0)))
        measured = measure_rt60(rendered_rir(room, tail_seconds=min(1.0, 3 * predicted)), FS)
        assert measured == pytest.approx(predicted, rel=0.35)

    def test_home_more_reverberant_when_rendered(self):
        lab_rt = measure_rt60(rendered_rir(lab_room(), tail_seconds=0.8), FS)
        home_rt = measure_rt60(rendered_rir(home_room(), tail_seconds=1.2), FS)
        assert home_rt > lab_rt

    def test_drr_drops_when_facing_away(self):
        """Insight 1, measured on the impulse response itself."""
        toward = direct_to_reverberant_ratio_db(
            rendered_rir(lab_room(), facing=(1.0, 0.0, 0.0), band=(2000.0, 4000.0)), FS
        )
        away = direct_to_reverberant_ratio_db(
            rendered_rir(lab_room(), facing=(-1.0, 0.0, 0.0), band=(2000.0, 4000.0)), FS
        )
        assert toward > away + 3.0

    def test_critical_distance_plausible(self):
        for room in (lab_room(), home_room()):
            d = critical_distance(room)
            assert 0.2 < d < 3.0
        # The deader lab supports a larger critical distance.
        assert critical_distance(lab_room()) > critical_distance(home_room())

    def test_drr_validation(self):
        with pytest.raises(ValueError):
            direct_to_reverberant_ratio_db(np.zeros(100), FS)
