"""Tests for the band-split image-source RIR generator."""

import numpy as np
import pytest

from repro.acoustics import (
    RirConfig,
    compute_images,
    human_head_directivity,
    lab_room,
    render_band_rirs,
)
from repro.arrays import SPEED_OF_SOUND

SOURCE = np.array([2.0, 2.0, 1.5])
BANDS = [(125.0, 250.0), (1000.0, 2000.0), (4000.0, 8000.0)]


class TestImageEnumeration:
    def test_order_zero_is_source_itself(self):
        images = compute_images(lab_room(), SOURCE, max_order=0)
        assert len(images) == 1
        assert np.allclose(images[0].position, SOURCE)
        assert images[0].order == 0
        assert images[0].facing_flips == (1, 1, 1)

    def test_order_one_count(self):
        """Order 1 adds exactly one image per wall: 6 + direct."""
        images = compute_images(lab_room(), SOURCE, max_order=1)
        assert len(images) == 7
        assert sorted(i.order for i in images) == [0, 1, 1, 1, 1, 1, 1]

    def test_order_two_count(self):
        """1 direct + 6 first-order + 18 second-order = 25."""
        images = compute_images(lab_room(), SOURCE, max_order=2)
        assert len(images) == 25

    def test_floor_image_mirrors_z(self):
        images = compute_images(lab_room(), SOURCE, max_order=1)
        floor = [i for i in images if np.allclose(i.position[:2], SOURCE[:2]) and i.position[2] < 0]
        assert len(floor) == 1
        assert floor[0].position[2] == pytest.approx(-SOURCE[2])
        assert floor[0].facing_flips[2] == -1

    def test_mirrored_facing_flips_components(self):
        images = compute_images(lab_room(), SOURCE, max_order=1)
        facing = np.array([1.0, 0.0, 0.0])
        x_wall = [i for i in images if i.facing_flips[0] == -1]
        assert x_wall
        mirrored = x_wall[0].mirrored_facing(facing)
        assert mirrored[0] == -1.0

    def test_source_outside_room_rejected(self):
        with pytest.raises(ValueError, match="outside room"):
            compute_images(lab_room(), np.array([-1.0, 1.0, 1.0]), 1)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            compute_images(lab_room(), np.zeros(2), 1)


class TestRirRendering:
    def make_rirs(self, facing=(1.0, 0.0, 0.0), config=None, mics=None):
        mics = mics if mics is not None else np.array([[4.0, 2.0, 1.0], [4.1, 2.0, 1.0]])
        return render_band_rirs(
            room=lab_room(),
            source_position=SOURCE,
            facing=np.asarray(facing),
            directivity=human_head_directivity(),
            mic_positions=mics,
            sample_rate=48_000,
            bands=BANDS,
            config=config or RirConfig(max_order=1, include_tail=False),
            rng=np.random.default_rng(0),
        )

    def test_shape(self):
        rirs = self.make_rirs()
        assert rirs.shape[0] == len(BANDS)
        assert rirs.shape[1] == 2

    def test_direct_path_arrival_time(self):
        rirs = self.make_rirs()
        distance = np.linalg.norm(np.array([4.0, 2.0, 1.0]) - SOURCE)
        expected = distance / SPEED_OF_SOUND * 48_000
        first_tap = int(np.nonzero(np.abs(rirs[0, 0]) > 1e-9)[0][0])
        assert first_tap == pytest.approx(expected, abs=2)

    def test_inverse_distance_amplitude(self):
        near = np.array([[3.0, 2.0, 1.5]])
        far = np.array([[5.0, 2.0, 1.5]])
        rir_near = self.make_rirs(mics=near)
        rir_far = self.make_rirs(mics=far)
        peak_near = np.abs(rir_near[1, 0]).max()
        peak_far = np.abs(rir_far[1, 0]).max()
        assert peak_near / peak_far == pytest.approx(3.0, rel=0.15)

    def test_facing_away_weakens_high_band_direct_path(self):
        toward = self.make_rirs(facing=(1.0, 0.0, 0.0))
        away = self.make_rirs(facing=(-1.0, 0.0, 0.0))
        hf = len(BANDS) - 1
        assert np.abs(toward[hf, 0]).max() > 3 * np.abs(away[hf, 0]).max()

    def test_facing_barely_affects_low_band(self):
        toward = self.make_rirs(facing=(1.0, 0.0, 0.0))
        away = self.make_rirs(facing=(-1.0, 0.0, 0.0))
        ratio = np.abs(toward[0, 0]).max() / np.abs(away[0, 0]).max()
        assert ratio < 1.6

    def test_tail_extends_rir(self):
        with_tail = self.make_rirs(config=RirConfig(max_order=1, include_tail=True, tail_max_seconds=0.2))
        without = self.make_rirs(config=RirConfig(max_order=1, include_tail=False))
        assert with_tail.shape[2] > without.shape[2]

    def test_tail_seed_is_reproducible(self):
        config = RirConfig(max_order=1, include_tail=True, tail_seed=99)
        a = self.make_rirs(config=config)
        b = self.make_rirs(config=config)
        assert np.array_equal(a, b)

    def test_occlusion_hook_scales_direct_only(self):
        config = RirConfig(max_order=1, include_tail=False)
        mics = np.array([[4.0, 2.0, 1.0]])
        open_rirs = render_band_rirs(
            lab_room(), SOURCE, np.array([1.0, 0, 0]), human_head_directivity(),
            mics, 48_000, BANDS, config, np.random.default_rng(0),
        )
        blocked = render_band_rirs(
            lab_room(), SOURCE, np.array([1.0, 0, 0]), human_head_directivity(),
            mics, 48_000, BANDS, config, np.random.default_rng(0),
            direct_band_gains=np.array([0.5, 0.5, 0.5]),
        )
        # The first arrival is the direct path: scaled by the full gain;
        # first-order reflections are shadowed partially (sqrt of it).
        nonzero = np.nonzero(np.abs(open_rirs[0, 0]) > 1e-9)[0]
        direct_tap = int(nonzero[0])
        last_tap = int(nonzero[-1])
        assert blocked[0, 0, direct_tap] == pytest.approx(
            0.5 * open_rirs[0, 0, direct_tap], rel=1e-6
        )
        assert blocked[0, 0, last_tap] == pytest.approx(
            np.sqrt(0.5) * open_rirs[0, 0, last_tap], rel=1e-6
        )

    def test_occlusion_spares_higher_orders(self):
        config = RirConfig(max_order=2, include_tail=False)
        mics = np.array([[4.0, 2.0, 1.0]])
        kwargs = dict(
            room=lab_room(), source_position=SOURCE,
            facing=np.array([1.0, 0, 0]), directivity=human_head_directivity(),
            mic_positions=mics, sample_rate=48_000, bands=BANDS[:1],
            config=config, rng=np.random.default_rng(0),
        )
        open_rirs = render_band_rirs(**kwargs)
        blocked = render_band_rirs(**kwargs, direct_band_gains=np.array([0.25]))
        # Total energy loss must be less than a uniform 0.25 scaling
        # would cause, because second-order paths are untouched.
        open_energy = float(np.sum(open_rirs**2))
        blocked_energy = float(np.sum(blocked**2))
        assert blocked_energy > 0.25**2 * open_energy
        assert blocked_energy < open_energy

    def test_validation(self):
        with pytest.raises(ValueError, match="facing"):
            self.make_rirs(facing=(0.0, 0.0, 0.0))
        with pytest.raises(ValueError, match="mic_positions"):
            render_band_rirs(
                lab_room(), SOURCE, np.array([1.0, 0, 0]), human_head_directivity(),
                np.zeros(3), 48_000, BANDS,
            )
        with pytest.raises(ValueError, match="direct_band_gains"):
            render_band_rirs(
                lab_room(), SOURCE, np.array([1.0, 0, 0]), human_head_directivity(),
                np.zeros((2, 3)) + SOURCE, 48_000, BANDS,
                direct_band_gains=np.array([1.0]),
            )


class TestRirConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RirConfig(max_order=-1)
        with pytest.raises(ValueError):
            RirConfig(tail_max_seconds=0.0)
        with pytest.raises(ValueError):
            RirConfig(tail_level=-0.1)
