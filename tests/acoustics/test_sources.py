"""Tests for human and loudspeaker sources."""

import numpy as np
import pytest

from repro.acoustics import (
    GALAXY_S21,
    HumanSpeaker,
    LoudspeakerModel,
    LoudspeakerSource,
    SONY_SRS_X5,
    replay_channel,
    synthesize_wake_word,
)
from repro.dsp import spectral_contrast

FS = 48_000


class TestHumanSpeaker:
    def test_emission_metadata(self):
        speaker = HumanSpeaker.random(np.random.default_rng(0), name="alice")
        rendering = speaker.emit("computer", FS, np.random.default_rng(1))
        assert rendering.is_live_human
        assert rendering.label == "alice"
        assert rendering.sample_rate == FS

    def test_profile_is_stable(self):
        speaker = HumanSpeaker.random(np.random.default_rng(5))
        a = speaker.emit("computer", FS, np.random.default_rng(1)).waveform
        b = speaker.emit("computer", FS, np.random.default_rng(1)).waveform
        assert np.array_equal(a, b)


class TestLoudspeakerModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            LoudspeakerModel("x", 0.0, 4000.0, -10.0, -40.0, 0.0)
        with pytest.raises(ValueError):
            LoudspeakerModel("x", 100.0, 4000.0, +3.0, -40.0, 0.0)
        with pytest.raises(ValueError):
            LoudspeakerModel("x", 100.0, 4000.0, -10.0, -40.0, 1.5)

    def test_paper_devices_defined(self):
        assert SONY_SRS_X5.name == "sony-srs-x5"
        assert GALAXY_S21.low_cutoff_hz > SONY_SRS_X5.low_cutoff_hz


class TestReplayChannel:
    def test_removes_high_frequency_structure(self):
        """Figure 3: replay has fewer structured >4 kHz responses."""
        speaker = HumanSpeaker.random(np.random.default_rng(0))
        rng = np.random.default_rng(1)
        original = synthesize_wake_word("computer", speaker.profile, FS, rng)
        replayed = replay_channel(original, FS, SONY_SRS_X5, rng)
        c_orig = spectral_contrast(original, FS)
        c_replay = spectral_contrast(replayed, FS)
        assert c_replay.high_fraction < c_orig.high_fraction
        assert c_replay.decay_db_per_octave < c_orig.decay_db_per_octave

    def test_band_limits_low_end(self):
        rng = np.random.default_rng(2)
        t = np.arange(FS) / FS
        rumble = np.sin(2 * np.pi * 50.0 * t)
        out = replay_channel(rumble, FS, GALAXY_S21, rng)
        assert np.sqrt(np.mean(out**2)) < 0.5  # 50 Hz well below 220 Hz cutoff... attenuated

    def test_normalized_output(self):
        rng = np.random.default_rng(3)
        x = np.sin(2 * np.pi * 500 * np.arange(FS // 2) / FS)
        out = replay_channel(x, FS, SONY_SRS_X5, rng)
        assert np.abs(out).max() == pytest.approx(1.0)

    def test_empty_input(self):
        assert replay_channel(np.array([]), FS, SONY_SRS_X5, np.random.default_rng(0)).size == 0

    def test_short_input_survives(self):
        """A handful of samples — shorter than any filter warm-up — is fine."""
        out = replay_channel(np.ones(5), FS, SONY_SRS_X5, np.random.default_rng(0))
        assert out.shape == (5,)
        assert np.all(np.isfinite(out))

    def test_dc_only_input_is_finite(self):
        """Pure DC dies in the high-pass; the noise floor keeps output sane."""
        out = replay_channel(np.full(FS // 10, 0.7), FS, GALAXY_S21, np.random.default_rng(5))
        assert np.all(np.isfinite(out))
        assert np.abs(out).max() <= 1.0 + 1e-9

    def test_rolloff_gain_monotone_above_knee(self):
        """The shelf only ever attenuates, monotonically with frequency."""
        from repro.acoustics.sources import rolloff_gain

        freqs = np.linspace(100.0, 20_000.0, 512)
        gain = rolloff_gain(freqs, SONY_SRS_X5)
        assert np.all(gain <= 1.0 + 1e-12)
        above = freqs > SONY_SRS_X5.rolloff_hz
        assert np.all(np.diff(gain[above]) <= 1e-12)
        assert np.all(gain[~above] == 1.0)

    def test_adds_noise_floor(self):
        """Gaps in the source stay non-silent after the replay channel."""
        rng = np.random.default_rng(4)
        x = np.concatenate([np.zeros(FS // 10), np.sin(2 * np.pi * 500 * np.arange(FS // 4) / FS)])
        out = replay_channel(x, FS, GALAXY_S21, rng)
        leading = out[: FS // 20]
        assert np.sqrt(np.mean(leading**2)) > 0


class TestLoudspeakerSource:
    def test_emission_is_mechanical(self):
        speaker = HumanSpeaker.random(np.random.default_rng(0))
        source = LoudspeakerSource(voice=speaker, model=SONY_SRS_X5)
        rendering = source.emit("computer", FS, np.random.default_rng(1))
        assert not rendering.is_live_human
        assert "sony" in rendering.label

    def test_directivity_differs_from_human(self):
        speaker = HumanSpeaker.random(np.random.default_rng(0))
        human = speaker.emit("computer", FS, np.random.default_rng(1))
        replay = LoudspeakerSource(voice=speaker).emit("computer", FS, np.random.default_rng(1))
        assert human.directivity != replay.directivity

    def test_lobe_contrast_against_human_head(self):
        """The cabinet beams harder on-axis but leaks more behind: at high
        frequency its rear lobe is *stronger* than a head's (no torso
        shadow), while off to the side it is *weaker* (sharper lobe)."""
        from repro.acoustics.directivity import (
            human_head_directivity,
            loudspeaker_directivity,
        )

        head = human_head_directivity()
        box = loudspeaker_directivity()
        assert box.gain(6000.0, np.pi) > head.gain(6000.0, np.pi)
        assert box.gain(6000.0, np.pi / 2) < head.gain(6000.0, np.pi / 2)
        # On-axis both are unity-ish: the contrast is in the pattern.
        assert box.gain(6000.0, 0.0) == pytest.approx(head.gain(6000.0, 0.0), abs=0.1)
