"""Tests for point-source interference rendering and device rotation."""

import numpy as np
import pytest

from repro.acoustics import (
    LAB_PLACEMENTS,
    RirConfig,
    Scene,
    SpeakerPose,
    lab_room,
    rms_to_spl,
)
from repro.acoustics.propagation import render_interference
from repro.acoustics.scene import DevicePlacement
from repro.arrays import get_device
from repro.datasets import CollectionSpec, collect
from repro.dsp import estimate_tdoa, srp_max_lag_for


@pytest.fixture()
def tv_scene(d2_subset):
    return Scene(
        room=lab_room(),
        device=d2_subset,
        placement=LAB_PLACEMENTS["A"],
        pose=SpeakerPose(distance_m=2.2, radial_deg=-40.0, mouth_height=0.9),
    )


class TestRenderInterference:
    def test_shape_and_level(self, tv_scene):
        n = 48_000 // 2
        channels = render_interference(
            tv_scene, "white", 45.0, n, np.random.default_rng(0),
            rir_config=RirConfig(max_order=1),
        )
        assert channels.shape == (tv_scene.device.n_mics, n)
        measured = rms_to_spl(float(np.sqrt(np.mean(channels**2))))
        assert measured == pytest.approx(45.0, abs=0.2)

    def test_coherent_across_channels(self, tv_scene):
        """A point source arrives with the geometric TDoA — unlike
        diffuse ambient noise."""
        n = 48_000
        channels = render_interference(
            tv_scene, "white", 50.0, n, np.random.default_rng(1),
            rir_config=RirConfig(max_order=0, include_tail=False),
        )
        array = tv_scene.device
        pair = (0, 2)
        expected = array.tdoa(
            tv_scene.source_position, pair, tv_scene.placement.position
        )
        estimated = estimate_tdoa(
            channels[pair[0]], channels[pair[1]], srp_max_lag_for(array), 48_000
        )
        assert estimated == pytest.approx(expected, abs=1.5 / 48_000)

    def test_all_kinds_render(self, tv_scene):
        for kind in ("white", "pink", "tv", "household"):
            channels = render_interference(
                tv_scene, kind, 40.0, 4800, np.random.default_rng(2),
                rir_config=RirConfig(max_order=0, include_tail=False),
            )
            assert np.all(np.isfinite(channels))

    def test_validation(self, tv_scene):
        with pytest.raises(ValueError, match="kind"):
            render_interference(tv_scene, "jet", 40.0, 100, np.random.default_rng(0))
        with pytest.raises(ValueError, match="duration"):
            render_interference(tv_scene, "white", 40.0, 0, np.random.default_rng(0))


class TestCollectionInterference:
    def test_noise_spec_changes_capture(self):
        base = CollectionSpec(locations=((1.0, 0.0),), angles=(0.0,), repetitions=1)
        noisy = CollectionSpec(
            locations=((1.0, 0.0),), angles=(0.0,), repetitions=1,
            noise=(("white", 70.0),),
        )
        _, clean_capture = next(iter(collect(base, 0)))
        _, noisy_capture = next(iter(collect(noisy, 0)))
        clean_power = float(np.mean(clean_capture.channels**2))
        noisy_power = float(np.mean(noisy_capture.channels**2))
        assert noisy_power > 1.3 * clean_power


class TestDeviceRotation:
    def test_rotation_moves_mics(self):
        device = get_device("D3")
        straight = DevicePlacement("p", (2.0, 2.0), 0.7, rotation_deg=0.0)
        rotated = DevicePlacement("p", (2.0, 2.0), 0.7, rotation_deg=45.0)
        pose = SpeakerPose(distance_m=1.0)
        scene_a = Scene(room=lab_room(), device=device, placement=straight, pose=pose)
        scene_b = Scene(room=lab_room(), device=device, placement=rotated, pose=pose)
        assert not np.allclose(scene_a.mic_positions, scene_b.mic_positions)
        # Rotation preserves the centroid and all pair distances.
        assert np.allclose(
            scene_a.mic_positions.mean(axis=0), scene_b.mic_positions.mean(axis=0)
        )

    def test_rotation_changes_tdoa(self):
        device = get_device("D3")
        pose = SpeakerPose(distance_m=2.0)
        tdoas = []
        for rotation in (0.0, 30.0):
            placement = DevicePlacement("p", (2.0, 2.0), 0.7, rotation_deg=rotation)
            scene = Scene(room=lab_room(), device=device, placement=placement, pose=pose)
            mics = scene.mic_positions
            d = np.linalg.norm(mics - scene.source_position, axis=1)
            tdoas.append(d[0] - d[2])
        assert abs(tdoas[0] - tdoas[1]) > 1e-5
