"""Tests for moving-speaker rendering."""

import numpy as np
import pytest

from repro.acoustics import RirConfig, render_capture, render_turning_capture


class TestTurningCapture:
    def test_shape_matches_static_render(self, lab_scene, speaker):
        rng = np.random.default_rng(0)
        emission = speaker.emit("computer", 48_000, rng)
        config = RirConfig(max_order=1, tail_seed=1)
        turning = render_turning_capture(
            lab_scene, emission, 0.0, 0.0, n_segments=4,
            rng=np.random.default_rng(1), rir_config=config,
        )
        static = render_capture(
            lab_scene, emission, rng=np.random.default_rng(1), rir_config=config
        )
        assert turning.n_mics == static.n_mics
        assert abs(turning.n_samples - static.n_samples) < 4800

    def test_single_segment_close_to_static(self, lab_scene, speaker):
        """With one segment the turning render reduces to a static one
        (up to noise realizations)."""
        rng = np.random.default_rng(2)
        emission = speaker.emit("computer", 48_000, rng)
        config = RirConfig(max_order=1, include_tail=False)
        turning = render_turning_capture(
            lab_scene, emission, 30.0, 30.0, n_segments=1,
            rng=np.random.default_rng(3), rir_config=config,
        )
        assert turning.n_samples > 0
        assert np.all(np.isfinite(turning.channels))

    def test_turn_changes_energy_profile(self, lab_scene, speaker):
        """Turning away should drop the captured energy toward the end
        relative to holding 0 degrees."""
        rng = np.random.default_rng(4)
        emission = speaker.emit("computer", 48_000, rng)
        config = RirConfig(max_order=1, include_tail=False, tail_seed=1)
        steady = render_turning_capture(
            lab_scene, emission, 0.0, 0.0, n_segments=6,
            rng=np.random.default_rng(5), rir_config=config,
        )
        away = render_turning_capture(
            lab_scene, emission, 0.0, 180.0, n_segments=6,
            rng=np.random.default_rng(5), rir_config=config,
        )
        n = min(steady.n_samples, away.n_samples)
        tail_steady = float(np.mean(steady.channels[:, int(0.7 * n) : n] ** 2))
        tail_away = float(np.mean(away.channels[:, int(0.7 * n) : n] ** 2))
        assert tail_away < tail_steady

    def test_validation(self, lab_scene, speaker):
        rng = np.random.default_rng(6)
        emission = speaker.emit("computer", 48_000, rng)
        with pytest.raises(ValueError, match="n_segments"):
            render_turning_capture(lab_scene, emission, 0.0, 90.0, n_segments=0)
