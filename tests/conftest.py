"""Shared fixtures: small, session-scoped simulated datasets.

Rendering audio is the expensive part of this codebase, so everything a
test might reuse (captures, tiny orientation datasets, a trained
detector) is built once per session at TINY scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.acoustics import (
    HumanSpeaker,
    LAB_PLACEMENTS,
    LoudspeakerSource,
    RirConfig,
    Scene,
    SpeakerPose,
    lab_room,
    render_capture,
)
from repro.arrays import get_device
from repro.core import OrientationDetector, preprocess
from repro.core.features import OrientationFeatureExtractor
from repro.datasets import CollectionSpec, build_orientation_dataset, stable_seed

# The same RIR settings the dataset collection path uses, so fixture
# captures and dataset-trained models share one acoustic distribution.
COLLECT_RIR = RirConfig(max_order=2, tail_seed=stable_seed("tail", "lab", "A"))


@pytest.fixture(scope="session")
def d2_subset():
    """The default 4-channel slice of D2."""
    device = get_device("D2")
    return device.subset([0, 1, 3, 4])


@pytest.fixture(scope="session")
def lab_scene(d2_subset):
    """A 1 m, head-on scene in the lab (matches the tiny dataset grid)."""
    return Scene(
        room=lab_room(),
        device=d2_subset,
        placement=LAB_PLACEMENTS["A"],
        pose=SpeakerPose(distance_m=1.0, head_angle_deg=0.0),
    )


@pytest.fixture(scope="session")
def speaker():
    """The same simulated user the tiny dataset is collected from."""
    from repro.datasets import speaker_profile

    return HumanSpeaker(profile=speaker_profile(0), name="test-user")


@pytest.fixture(scope="session")
def forward_capture(lab_scene, speaker):
    """One forward-facing capture (deterministic)."""
    rng = np.random.default_rng(25)
    emission = speaker.emit("computer", lab_scene.device.sample_rate, rng)
    return render_capture(lab_scene, emission, rng=rng, rir_config=COLLECT_RIR)


@pytest.fixture(scope="session")
def backward_capture(lab_scene, speaker):
    """One backward-facing capture (deterministic)."""
    rng = np.random.default_rng(22)
    scene = lab_scene.with_pose(SpeakerPose(distance_m=1.0, head_angle_deg=180.0))
    emission = speaker.emit("computer", scene.device.sample_rate, rng)
    return render_capture(scene, emission, rng=rng, rir_config=COLLECT_RIR)


@pytest.fixture(scope="session")
def replay_capture(lab_scene, speaker):
    """One loudspeaker-replay capture (deterministic)."""
    rng = np.random.default_rng(23)
    source = LoudspeakerSource(voice=speaker)
    emission = source.emit("computer", lab_scene.device.sample_rate, rng)
    return render_capture(lab_scene, emission, rng=rng, rir_config=COLLECT_RIR)


@pytest.fixture(scope="session")
def side_capture(lab_scene, speaker):
    """One 90-degree (side-facing) capture (deterministic)."""
    rng = np.random.default_rng(24)
    scene = lab_scene.with_pose(SpeakerPose(distance_m=1.0, head_angle_deg=90.0))
    emission = speaker.emit("computer", scene.device.sample_rate, rng)
    return render_capture(scene, emission, rng=rng, rir_config=COLLECT_RIR)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A two-session TINY orientation dataset (28 utterances)."""
    specs = tuple(
        CollectionSpec(
            room="lab",
            device="D2",
            wake_word="computer",
            locations=((1.0, 0.0),),
            repetitions=1,
            session=session,
        )
        for session in (0, 1)
    )
    return build_orientation_dataset(specs, seed=0)


@pytest.fixture(scope="session")
def trained_detector(lab_scene, speaker, d2_subset) -> OrientationDetector:
    """An SVM detector trained on fixture-style captures at 1 m.

    Trained on the same nominal scene the capture fixtures use, so
    pipeline tests see in-distribution inputs.
    """
    from repro.core import FACING, NON_FACING

    extractor = OrientationFeatureExtractor(d2_subset)
    rows, labels = [], []
    rng = np.random.default_rng(31)
    training_angles = {
        FACING: (0.0, 15.0, -15.0, 30.0, -30.0),
        NON_FACING: (90.0, -90.0, 135.0, -135.0, 180.0),
    }
    for label, angles in training_angles.items():
        for angle in angles:
            for _ in range(2):
                scene = lab_scene.with_pose(
                    SpeakerPose(distance_m=1.0, head_angle_deg=angle)
                )
                emission = speaker.emit("computer", 48_000, rng)
                capture = render_capture(scene, emission, rng=rng, rir_config=COLLECT_RIR)
                rows.append(extractor.extract(preprocess(capture)))
                labels.append(label)
    return OrientationDetector(backend="svm").fit(np.stack(rows), np.asarray(labels))


@pytest.fixture(scope="session")
def extractor(d2_subset):
    """The orientation feature extractor for the D2 subset."""
    return OrientationFeatureExtractor(d2_subset)


@pytest.fixture(scope="session")
def trained_pipeline(d2_subset, trained_detector, lab_scene, speaker):
    """A fully trained gate (300-epoch liveness + fixture-trained SVM).

    Session-scoped because the liveness fit is the most expensive model
    in the suite; the pipeline is stateless across evaluations, so
    sharing one instance between test modules is safe.
    """
    from repro.core import (
        HeadTalkConfig,
        HeadTalkPipeline,
        LIVE_HUMAN,
        LivenessDetector,
        MECHANICAL,
    )

    fs = 48_000
    rng = np.random.default_rng(0)
    replay_source = LoudspeakerSource(voice=speaker)
    waveforms, labels = [], []
    for angle in (0.0, 90.0, 180.0):
        scene = lab_scene.with_pose(SpeakerPose(distance_m=1.0, head_angle_deg=angle))
        for _ in range(6):
            for source, label in ((speaker, LIVE_HUMAN), (replay_source, MECHANICAL)):
                emission = source.emit("computer", fs, rng)
                capture = render_capture(scene, emission, rng=rng, rir_config=COLLECT_RIR)
                waveforms.append(preprocess(capture).reference)
                labels.append(label)
    liveness = LivenessDetector(epochs=300, random_state=0)
    liveness.network.batch_size = 8
    liveness.fit(waveforms, np.asarray(labels), fs)
    return HeadTalkPipeline(
        array=d2_subset,
        liveness=liveness,
        orientation=trained_detector,
        config=HeadTalkConfig(),
    )
