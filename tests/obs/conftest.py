"""Shared observability-test plumbing.

Observability state is process-global (that is the point of the layer),
so every test here runs inside a fixture that clears spans, metrics,
the audit ring and the decision-quality monitor, and restores the
disabled default afterwards.
"""

import os

import pytest

from repro.obs import (
    REGISTRY,
    audit_log,
    clear_profiles,
    clear_spans,
    reset_worker_totals,
    set_obs_enabled,
    set_profiling_enabled,
)
from repro.obs.audit import DEFAULT_CAPACITY
from repro.obs.correlate import set_correlation
from repro.obs.monitor import reset_monitor, reset_slo_monitor, set_monitor_enabled


def _reset_obs_state():
    set_obs_enabled(False)
    set_profiling_enabled(False)
    clear_spans()
    REGISTRY.reset()
    reset_worker_totals()
    clear_profiles()
    audit_log().clear()
    # Restore the env-derived sink, not None: the instrumented CI leg
    # runs the whole suite with REPRO_AUDIT_LOG pointing at the JSONL
    # the quality gate later replays, and a reset must not disconnect
    # every test after the first obs test from it.
    audit_log().configure(
        path=os.environ.get("REPRO_AUDIT_LOG") or None, capacity=DEFAULT_CAPACITY
    )
    reset_monitor()
    reset_slo_monitor()
    set_monitor_enabled(True)
    set_correlation(None)


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Fresh, disabled observability state around every test."""
    _reset_obs_state()
    yield
    _reset_obs_state()
