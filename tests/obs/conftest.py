"""Shared observability-test plumbing.

Observability state is process-global (that is the point of the layer),
so every test here runs inside a fixture that clears spans, metrics and
the audit ring, and restores the disabled default afterwards.
"""

import pytest

from repro.obs import REGISTRY, audit_log, clear_spans, set_obs_enabled
from repro.obs.audit import DEFAULT_CAPACITY


def _reset_obs_state():
    set_obs_enabled(False)
    clear_spans()
    REGISTRY.reset()
    audit_log().clear()
    audit_log().configure(path=None, capacity=DEFAULT_CAPACITY)


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Fresh, disabled observability state around every test."""
    _reset_obs_state()
    yield
    _reset_obs_state()
