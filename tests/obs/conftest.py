"""Shared observability-test plumbing.

Observability state is process-global (that is the point of the layer),
so every test here runs inside a fixture that clears spans, metrics and
the audit ring, and restores the disabled default afterwards.
"""

import pytest

from repro.obs import (
    REGISTRY,
    audit_log,
    clear_profiles,
    clear_spans,
    reset_worker_totals,
    set_obs_enabled,
    set_profiling_enabled,
)
from repro.obs.audit import DEFAULT_CAPACITY


def _reset_obs_state():
    set_obs_enabled(False)
    set_profiling_enabled(False)
    clear_spans()
    REGISTRY.reset()
    reset_worker_totals()
    clear_profiles()
    audit_log().clear()
    audit_log().configure(path=None, capacity=DEFAULT_CAPACITY)


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Fresh, disabled observability state around every test."""
    _reset_obs_state()
    yield
    _reset_obs_state()
