"""Cross-process worker telemetry: sidecars, merge, context propagation.

The tentpole invariant: a multi-worker ``render_captures`` run with
observability on yields a parent metrics snapshot whose per-worker cache
counters and task counts equal the sum of the per-task sidecars — and
byte-identical captures either way.
"""

import os

import numpy as np
import pytest

from repro.datasets import CollectionSpec
from repro.datasets.collection import render_tasks
from repro.obs import (
    REGISTRY,
    last_sidecars,
    obs_enabled,
    reset_worker_totals,
    set_obs_enabled,
    span_records,
    worker_totals,
)
from repro.obs.workers import (
    ObsContext,
    WorkerSidecar,
    current_context,
    current_run_id,
    init_worker,
    merge_sidecar,
    set_run_id,
    task_telemetry,
    worker_context,
)
from repro.runtime import clear_caches, execute_render_task, persistent_pool, render_captures

SPEC = CollectionSpec(
    room="lab",
    device="D2",
    wake_word="computer",
    locations=((1.0, 0.0),),
    angles=(0.0, 180.0),
    repetitions=1,
)


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


def _tasks():
    return [task for _, task in render_tasks(SPEC)]


class TestObsContext:
    def test_current_context_mirrors_process_state(self):
        assert current_context() == ObsContext(enabled=False, run_id=None)
        set_obs_enabled(True)
        try:
            set_run_id("r7")
            assert current_context() == ObsContext(enabled=True, run_id="r7")
        finally:
            set_run_id(None)

    def test_init_worker_adopts_context(self):
        try:
            init_worker(ObsContext(enabled=True, run_id="pool-run"))
            assert obs_enabled() is True
            assert current_run_id() == "pool-run"
            assert worker_context().run_id == "pool-run"
        finally:
            init_worker(ObsContext())
            assert obs_enabled() is False
            assert current_run_id() is None


class TestTaskTelemetry:
    def test_sidecar_captures_task(self):
        task = _tasks()[0]
        with task_telemetry() as telemetry:
            execute_render_task(task)
        sidecar = telemetry.sidecar
        assert sidecar.pid == os.getpid()
        assert sidecar.task_ms > 0
        assert set(sidecar.cache) == {"rir", "dry"}
        assert sidecar.cache["dry"]["misses"] == 1
        assert any(record.name == "runtime.render_task" for record in sidecar.spans)
        # Telemetry forces observability on for the task body only.
        assert obs_enabled() is False
        # The worker-side buffer was cleared after the sidecar took its spans.
        assert span_records() == []

    def test_cache_deltas_are_per_task(self):
        task = _tasks()[0]
        with task_telemetry() as first:
            execute_render_task(task)
        with task_telemetry() as second:
            execute_render_task(task)
        # The second run hits the dry cache warmed by the first; deltas
        # carry only this task's lookups, not the cumulative counts.
        assert first.sidecar.cache["dry"] == {"hits": 0, "misses": 1, "evictions": 0}
        assert second.sidecar.cache["dry"] == {"hits": 1, "misses": 0, "evictions": 0}


class TestMergeSidecar:
    def _sidecar(self, pid=111, task_ms=2.0, hits=3, misses=1):
        return WorkerSidecar(
            pid=pid,
            run_id=None,
            task_ms=task_ms,
            cache={
                "rir": {"hits": hits, "misses": misses, "evictions": 0},
                "dry": {"hits": 0, "misses": 0, "evictions": 0},
            },
        )

    def test_merge_accumulates_registry_and_totals(self):
        merge_sidecar(self._sidecar(task_ms=2.0))
        merge_sidecar(self._sidecar(task_ms=3.0, hits=1))
        snapshot = REGISTRY.snapshot()
        assert snapshot["runtime.worker.tasks{worker=111}"]["value"] == 2
        assert snapshot["runtime.worker.cache.hits{cache=rir,worker=111}"]["value"] == 4
        assert snapshot["runtime.worker.cache.misses{cache=rir,worker=111}"]["value"] == 2
        # Zero deltas (the dry cache here) emit no counter at all.
        assert "runtime.worker.cache.hits{cache=dry,worker=111}" not in snapshot
        assert snapshot["runtime.worker.task_ms{worker=111}"]["count"] == 2
        totals = worker_totals()
        assert totals["111"]["tasks"] == 2
        assert totals["111"]["task_ms"] == pytest.approx(5.0)
        assert totals["111"]["cache"]["rir"] == {"hits": 4, "misses": 2, "evictions": 0}
        assert len(last_sidecars()) == 2

    def test_merge_ingests_worker_spans(self):
        set_obs_enabled(True)
        with task_telemetry() as telemetry:
            execute_render_task(_tasks()[0])
        merge_sidecar(telemetry.sidecar)
        threads = {r.thread for r in span_records()}
        assert f"worker-{os.getpid()}" in threads

    def test_reset_clears_totals(self):
        merge_sidecar(self._sidecar())
        reset_worker_totals()
        assert worker_totals() == {}
        assert last_sidecars() == []


class TestPoolTelemetry:
    """End-to-end: telemetry rides the pool results back to the parent."""

    def test_parent_snapshot_equals_sidecar_sums(self):
        tasks = _tasks()
        serial = render_captures(tasks, workers=1)
        clear_caches()
        set_obs_enabled(True)
        set_run_id("pool-e2e")
        try:
            with persistent_pool(2):
                first = render_captures(tasks, workers=2)
                second = render_captures(tasks, workers=2)
        finally:
            set_run_id(None)

        # Captures stay byte-identical to serial on the observed path.
        for a, b, c in zip(serial, first, second):
            assert np.array_equal(a.channels, b.channels)
            assert np.array_equal(a.channels, c.channels)

        sidecars = last_sidecars()
        assert len(sidecars) == 2 * len(tasks)
        assert all(s.run_id == "pool-e2e" for s in sidecars)

        snapshot = REGISTRY.snapshot()
        totals = worker_totals()
        # Parent counters equal the sum of per-task sidecar deltas, per
        # worker and per cache/event.
        for pid in totals:
            expected_tasks = sum(1 for s in sidecars if str(s.pid) == pid)
            assert snapshot[f"runtime.worker.tasks{{worker={pid}}}"]["value"] == expected_tasks
            assert totals[pid]["tasks"] == expected_tasks
            for cache in ("rir", "dry"):
                for event in ("hits", "misses", "evictions"):
                    expected = sum(s.cache[cache][event] for s in sidecars if str(s.pid) == pid)
                    assert totals[pid]["cache"][cache][event] == expected
                    metric = f"runtime.worker.cache.{event}{{cache={cache},worker={pid}}}"
                    if expected:
                        assert snapshot[metric]["value"] == expected
                    else:
                        assert metric not in snapshot
        # Per-task render timings all land in the parent histograms.
        histogram_count = sum(
            summary["count"] for summary in REGISTRY.histograms("runtime.worker.task_ms").values()
        )
        assert histogram_count == len(sidecars)
        # Worker spans are re-threaded into the parent trace.
        worker_threads = {r.thread for r in span_records() if r.thread.startswith("worker-")}
        assert worker_threads == {f"worker-{pid}" for pid in totals}
        # Every task missed the dry cache once or hit it once — totals
        # over all workers must account for every render.
        dry_lookups = sum(
            totals[pid]["cache"]["dry"]["hits"] + totals[pid]["cache"]["dry"]["misses"]
            for pid in totals
        )
        assert dry_lookups == 2 * len(tasks)

    def test_disabled_path_is_plain(self):
        tasks = _tasks()
        serial = render_captures(tasks, workers=1)
        clear_caches()
        parallel = render_captures(tasks, workers=2)
        for a, b in zip(serial, parallel):
            assert np.array_equal(a.channels, b.channels)
        assert REGISTRY.snapshot() == {}
        assert last_sidecars() == []
        assert worker_totals() == {}
