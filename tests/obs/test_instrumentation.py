"""Pipeline instrumentation: audit records, span timings, no-op purity.

Detector stubs keep these tests fast — the contract under test is the
observability wiring, not the detectors (those have their own suites).
The feature extractor and preprocessing are real.
"""

import numpy as np
import pytest

from repro.acoustics import Capture
from repro.core import HeadTalkConfig, HeadTalkPipeline
from repro.core.pipeline import capture_key
from repro.obs import (
    REGISTRY,
    audit_log,
    set_obs_enabled,
    span_records,
)


class FakeLiveness:
    def scores(self, waveforms, sample_rate):
        return np.full(len(waveforms), 0.9)


class FakeOrientation:
    def facing_probability(self, rows):
        return np.full(rows.shape[0], 0.8)


@pytest.fixture
def fake_pipeline(d2_subset):
    return HeadTalkPipeline(
        array=d2_subset,
        liveness=FakeLiveness(),
        orientation=FakeOrientation(),
        config=HeadTalkConfig(),
    )


@pytest.fixture
def noisy_capture(d2_subset):
    rng = np.random.default_rng(11)
    channels = rng.standard_normal((d2_subset.n_mics, d2_subset.sample_rate // 2))
    return Capture(channels=channels, sample_rate=d2_subset.sample_rate)


class TestEvaluateAudit:
    def test_every_evaluate_produces_one_record(self, fake_pipeline, noisy_capture):
        set_obs_enabled(True)
        decision = fake_pipeline.evaluate(noisy_capture)
        (record,) = audit_log().records()
        assert record["event"] == "decision"
        assert record["call"] == "evaluate"
        assert record["capture_key"] == capture_key(noisy_capture)
        assert record["accepted"] == decision.accepted
        assert record["reason"] == decision.reason
        assert record["total_ms"] == pytest.approx(decision.total_ms)
        assert set(record["cache"]) == {"rir", "dry"}

    def test_span_sum_consistent_with_total_ms(self, fake_pipeline, noisy_capture):
        set_obs_enabled(True)
        decision = fake_pipeline.evaluate(noisy_capture)
        stage_names = {"pipeline.preprocess", "pipeline.liveness", "pipeline.orientation"}
        stages = [r for r in span_records() if r.name in stage_names]
        assert {r.name for r in stages} == stage_names
        stage_sum = sum(r.duration_ms for r in stages)
        # Stage spans wrap the same perf_counter regions total_ms sums,
        # plus a few context-manager entries/exits of slack.
        assert stage_sum == pytest.approx(decision.total_ms, rel=0.25, abs=2.0)
        (root,) = span_records("pipeline.evaluate")
        assert root.depth == 0
        assert all(r.parent == "pipeline.evaluate" for r in stages)
        assert root.duration_ms >= stage_sum * 0.75

    def test_stage_histograms_populated(self, fake_pipeline, noisy_capture):
        set_obs_enabled(True)
        fake_pipeline.evaluate(noisy_capture)
        histograms = REGISTRY.histograms("pipeline.stage_ms")
        assert set(histograms) == {
            "pipeline.stage_ms{stage=preprocess}",
            "pipeline.stage_ms{stage=liveness}",
            "pipeline.stage_ms{stage=orientation}",
        }
        assert all(h["count"] == 1 for h in histograms.values())
        snapshot = REGISTRY.snapshot()
        assert snapshot["pipeline.decisions{call=evaluate,reason=accepted}"]["value"] == 1


class TestBatchAudit:
    def test_batch_records_every_capture(self, fake_pipeline, d2_subset):
        set_obs_enabled(True)
        rng = np.random.default_rng(3)
        captures = [
            Capture(
                channels=rng.standard_normal((d2_subset.n_mics, d2_subset.sample_rate // 2)),
                sample_rate=d2_subset.sample_rate,
            )
            for _ in range(3)
        ]
        evaluation = fake_pipeline.evaluate_batch(captures)
        records = audit_log().records()
        assert len(records) == 3
        for index, (capture, record) in enumerate(zip(captures, records)):
            assert record["call"] == "evaluate_batch"
            assert record["capture_key"] == capture_key(capture)
            assert record["batch_size"] == 3
            assert record["batch_index"] == index
        per_capture = REGISTRY.histograms("pipeline.batch_per_capture_ms")
        assert per_capture["pipeline.batch_per_capture_ms"]["count"] == 1
        (root,) = span_records("pipeline.evaluate_batch")
        assert root.labels == (("n", "3"),)
        assert len(evaluation) == 3


class TestNoopPurity:
    def test_disabled_evaluate_has_zero_side_effects(self, fake_pipeline, noisy_capture):
        decision = fake_pipeline.evaluate(noisy_capture)
        assert decision.total_ms > 0  # the pipeline itself still times stages
        assert span_records() == []
        assert REGISTRY.snapshot() == {}
        assert audit_log().records() == []

    def test_disabled_batch_has_zero_side_effects(self, fake_pipeline, noisy_capture):
        fake_pipeline.evaluate_batch([noisy_capture])
        assert span_records() == []
        assert REGISTRY.snapshot() == {}
        assert audit_log().records() == []

    def test_decisions_identical_with_and_without_observability(
        self, fake_pipeline, noisy_capture
    ):
        baseline = fake_pipeline.evaluate(noisy_capture)
        set_obs_enabled(True)
        observed_run = fake_pipeline.evaluate(noisy_capture)
        assert observed_run.fingerprint() == baseline.fingerprint()


class TestCaptureKey:
    def test_key_is_content_stable(self, noisy_capture):
        duplicate = Capture(
            channels=noisy_capture.channels.copy(), sample_rate=noisy_capture.sample_rate
        )
        assert capture_key(noisy_capture) == capture_key(duplicate)

    def test_key_changes_with_content(self, noisy_capture):
        perturbed = Capture(
            channels=noisy_capture.channels + 1e-6, sample_rate=noisy_capture.sample_rate
        )
        assert capture_key(noisy_capture) != capture_key(perturbed)
        assert len(capture_key(noisy_capture)) == 16  # blake2b digest_size=8 hex
