"""Bench reports: schema validation, comparator semantics, CLI exit codes."""

import json

import pytest

from repro.obs import bench
from repro.obs.bench import BenchReport, compare, validate


def _report(**metric_overrides):
    """A minimal valid report; keyword args override metric values."""
    report = BenchReport("runtime", env={"cpu_count": 1}, created=1000.0)
    report.add_metric("stage.latency_ms", 10.0, unit="ms")
    report.add_metric("render.speedup", 4.0, kind="ratio", direction="higher")
    report.add_metric("render.equal", True, kind="equivalence")
    report.add_metric("render.note", "single-core", kind="info")
    document = report.to_dict()
    for name, value in metric_overrides.items():
        document["metrics"][name]["value"] = value
    return document


class TestValidate:
    def test_valid_report(self):
        assert validate(_report()) == []

    def test_wrong_schema(self):
        document = _report()
        document["schema"] = "repro.obs.bench/0"
        assert any("schema" in problem for problem in validate(document))

    def test_missing_metrics(self):
        document = _report()
        document["metrics"] = {}
        assert any("metrics" in problem for problem in validate(document))

    def test_non_numeric_gated_value(self):
        document = _report()
        document["metrics"]["stage.latency_ms"]["value"] = "fast"
        assert any("numeric" in problem for problem in validate(document))

    def test_not_an_object(self):
        assert validate([1, 2]) == ["document is not a JSON object"]


class TestAddMetric:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            BenchReport("x").add_metric("m", 1.0, kind="latency")

    def test_unknown_direction_rejected(self):
        with pytest.raises(ValueError, match="direction"):
            BenchReport("x").add_metric("m", 1.0, direction="up")

    def test_equivalence_always_gated_direction_free(self):
        report = BenchReport("x")
        report.add_metric("m", True, kind="equivalence", direction="lower", gate=False)
        assert report.metrics["m"] == {
            "value": True,
            "kind": "equivalence",
            "unit": "",
            "direction": "none",
            "gate": True,
        }

    def test_info_never_gated(self):
        report = BenchReport("x")
        report.add_metric("m", "text", kind="info", gate=True)
        assert report.metrics["m"]["gate"] is False

    def test_write_refuses_invalid(self, tmp_path):
        report = BenchReport("x")  # no metrics -> invalid
        with pytest.raises(ValueError, match="invalid report"):
            report.write(tmp_path / "bad.json")

    def test_from_dict_is_independent(self):
        document = _report()
        rebuilt = BenchReport.from_dict(document)
        rebuilt.metrics["stage.latency_ms"]["value"] = 999.0
        assert document["metrics"]["stage.latency_ms"]["value"] == 10.0


class TestCompare:
    def test_identical_reports_pass(self):
        outcome = compare(_report(), _report())
        assert outcome.passed
        assert {row["status"] for row in outcome.rows} <= {"ok", "info"}

    def test_regression_within_threshold_passes(self):
        outcome = compare(_report(), _report(**{"stage.latency_ms": 12.0}), 25.0)
        assert outcome.passed

    def test_regression_beyond_threshold_fails(self):
        outcome = compare(_report(), _report(**{"stage.latency_ms": 13.0}), 25.0)
        assert not outcome.passed
        assert "stage.latency_ms" in outcome.failures[0]

    def test_improvement_always_passes(self):
        outcome = compare(_report(), _report(**{"stage.latency_ms": 1.0}), 0.0)
        assert outcome.passed

    def test_higher_is_better_direction(self):
        assert compare(_report(), _report(**{"render.speedup": 3.5}), 25.0).passed
        outcome = compare(_report(), _report(**{"render.speedup": 2.0}), 25.0)
        assert not outcome.passed

    def test_equivalence_strict_at_any_threshold(self):
        outcome = compare(_report(), _report(**{"render.equal": False}), 1e9)
        assert not outcome.passed
        assert "equivalence" in outcome.failures[0]

    def test_info_metric_never_fails(self):
        outcome = compare(_report(), _report(**{"render.note": "different"}))
        assert outcome.passed

    def test_missing_metric_fails(self):
        current = _report()
        del current["metrics"]["stage.latency_ms"]
        outcome = compare(_report(), current)
        assert not outcome.passed
        assert "missing" in outcome.failures[0]

    def test_new_metric_is_reported_not_gated(self):
        current = _report()
        current["metrics"]["brand.new"] = {
            "value": 1.0,
            "kind": "count",
            "unit": "",
            "direction": "lower",
            "gate": True,
        }
        outcome = compare(_report(), current)
        assert outcome.passed
        assert any(row["status"] == "new" for row in outcome.rows)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            compare(_report(), _report(), -1.0)


class TestCli:
    def _write(self, path, document):
        path.write_text(json.dumps(document))
        return str(path)

    def test_compare_pass_exits_zero(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", _report())
        cur = self._write(tmp_path / "cur.json", _report())
        assert bench.main(["--compare", base, cur]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_compare_fail_exits_one(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", _report())
        cur = self._write(tmp_path / "cur.json", _report(**{"stage.latency_ms": 100.0}))
        assert bench.main(["--compare", base, cur, "--max-regress", "25"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_max_regress_widens_the_gate(self, tmp_path):
        base = self._write(tmp_path / "base.json", _report())
        cur = self._write(tmp_path / "cur.json", _report(**{"stage.latency_ms": 20.0}))
        assert bench.main(["--compare", base, cur, "--max-regress", "25"]) == 1
        assert bench.main(["--compare", base, cur, "--max-regress", "150"]) == 0

    def test_invalid_report_exits_one(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", _report())
        bad = self._write(tmp_path / "bad.json", {"schema": "nope"})
        assert bench.main(["--compare", base, bad]) == 1
        assert "schema" in capsys.readouterr().err

    def test_unreadable_file_exits_one(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", _report())
        assert bench.main(["--compare", base, str(tmp_path / "missing.json")]) == 1
        capsys.readouterr()

    def test_validate_good_report(self, tmp_path, capsys):
        path = self._write(tmp_path / "report.json", _report())
        assert bench.main(["--validate", path]) == 0
        assert "valid" in capsys.readouterr().out

    def test_validate_bad_report(self, tmp_path, capsys):
        path = self._write(tmp_path / "report.json", {"schema": "nope"})
        assert bench.main(["--validate", path]) == 1
        capsys.readouterr()

    def test_no_arguments_is_usage_error(self, capsys):
        assert bench.main([]) == 2
        capsys.readouterr()
