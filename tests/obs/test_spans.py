"""Spans: nesting, exception safety, no-op mode, trace export."""

import json
import threading

import pytest

from repro.obs import clear_spans, set_obs_enabled, span, span_records
from repro.obs.spans import NOOP_SPAN, export_trace


class TestNesting:
    def test_records_depth_and_parent(self):
        set_obs_enabled(True)
        with span("outer"):
            with span("middle"):
                with span("inner"):
                    pass
            with span("sibling"):
                pass
        names = [r.name for r in span_records()]
        assert names == ["inner", "middle", "sibling", "outer"]
        by_name = {r.name: r for r in span_records()}
        assert by_name["outer"].depth == 0 and by_name["outer"].parent is None
        assert by_name["middle"].depth == 1 and by_name["middle"].parent == "outer"
        assert by_name["inner"].depth == 2 and by_name["inner"].parent == "middle"
        assert by_name["sibling"].parent == "outer"

    def test_child_duration_within_parent(self):
        set_obs_enabled(True)
        with span("parent"):
            with span("child"):
                sum(range(1000))
        child, parent = span_records()
        assert 0 <= child.duration_ms <= parent.duration_ms
        assert parent.start_ms <= child.start_ms

    def test_labels_stringified_and_sorted(self):
        set_obs_enabled(True)
        with span("labelled", workers=2, mode="pool"):
            pass
        record = span_records("labelled")[0]
        assert record.labels == (("mode", "pool"), ("workers", "2"))
        assert record.to_dict()["labels"] == {"mode": "pool", "workers": "2"}

    def test_threads_nest_independently(self):
        set_obs_enabled(True)
        barrier = threading.Barrier(2)

        def work(name):
            with span(name):
                barrier.wait(timeout=5)

        threads = [threading.Thread(target=work, args=(f"t{i}",)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Concurrent spans never appear as each other's parent.
        for record in span_records():
            assert record.depth == 0 and record.parent is None


class TestExceptionSafety:
    def test_exception_recorded_and_propagated(self):
        set_obs_enabled(True)
        with pytest.raises(ValueError, match="boom"):
            with span("failing"):
                raise ValueError("boom")
        record = span_records("failing")[0]
        assert record.error == "ValueError"
        assert record.duration_ms >= 0

    def test_stack_unwound_after_exception(self):
        set_obs_enabled(True)
        with pytest.raises(RuntimeError):
            with span("outer"):
                with span("inner"):
                    raise RuntimeError("x")
        # A fresh span after the unwind is a root span again.
        with span("after"):
            pass
        after = span_records("after")[0]
        assert after.depth == 0 and after.parent is None
        outer = span_records("outer")[0]
        assert outer.error == "RuntimeError"


class TestNoopMode:
    def test_disabled_returns_shared_noop(self):
        assert span("anything") is NOOP_SPAN

    def test_disabled_records_nothing(self):
        with span("invisible"):
            with span("also-invisible"):
                pass
        assert span_records() == []

    def test_toggle_mid_run(self):
        with span("before"):
            pass
        set_obs_enabled(True)
        with span("during"):
            pass
        set_obs_enabled(False)
        with span("after"):
            pass
        assert [r.name for r in span_records()] == ["during"]


class TestExport:
    def test_trace_round_trips_through_json(self, tmp_path):
        set_obs_enabled(True)
        with span("a", k="v"):
            with span("b"):
                pass
        path = tmp_path / "trace.json"
        trace = export_trace(path)
        assert json.loads(path.read_text()) == json.loads(json.dumps(trace))
        assert {entry["name"] for entry in trace} == {"a", "b"}
        for entry in trace:
            assert set(entry) == {
                "name",
                "start_ms",
                "duration_ms",
                "depth",
                "parent",
                "thread",
                "error",
                "labels",
            }

    def test_clear_spans(self):
        set_obs_enabled(True)
        with span("x"):
            pass
        assert span_records()
        clear_spans()
        assert span_records() == []

    def test_export_concurrent_with_span_creation(self, tmp_path):
        """Exporting while other threads trace never corrupts the trace.

        The live ``/metrics`` sidecar and trace export read the span
        buffer while handler threads are still completing spans; every
        exported frame must be internally consistent JSON with only
        whole records.
        """
        set_obs_enabled(True)
        stop = threading.Event()
        errors = []

        def tracer(k):
            i = 0
            while not stop.is_set() and i < 50_000:
                with span(f"w{k}", i=i):
                    i += 1

        threads = [threading.Thread(target=tracer, args=(k,)) for k in range(3)]
        for thread in threads:
            thread.start()
        try:
            for round_no in range(8):
                path = tmp_path / f"trace_{round_no}.json"
                trace = export_trace(path)
                reloaded = json.loads(path.read_text())
                if reloaded != json.loads(json.dumps(trace)):
                    errors.append("file/return divergence")
                for entry in reloaded:
                    if entry["name"] not in {"w0", "w1", "w2"} or "i" not in entry["labels"]:
                        errors.append(f"torn record: {entry}")
                clear_spans()  # keep each exported frame small and fresh
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert errors == []
