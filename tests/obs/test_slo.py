"""SLO burn-rate alarms: multi-window firing, rising edges, env knobs."""

import pytest

from repro.obs import REGISTRY, audit_log, set_obs_enabled
from repro.obs import control as obs_control
from repro.obs.monitor import (
    DEFAULT_SLO_LATENCY_MS,
    SloMonitor,
    SloRule,
    SloTracker,
    default_slo_rules,
    reset_slo_monitor,
    slo_monitor,
    slo_observe_decision,
)


class FakeClock:
    def __init__(self, t: float = 1000.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


RULE = SloRule(
    "serving.latency_p95",
    budget=0.05,
    threshold_ms=100.0,
    fast_window_s=10.0,
    slow_window_s=60.0,
    burn_threshold=1.0,
    min_events=5,
)


class TestSloTracker:
    def test_no_fire_below_min_events(self):
        tracker = SloTracker(RULE, clock=FakeClock())
        for _ in range(4):
            assert tracker.observe(bad=True) is None
        assert not tracker.firing()

    def test_fires_once_on_the_rising_edge(self):
        clock = FakeClock()
        tracker = SloTracker(RULE, clock=clock)
        alarms = [tracker.observe(bad=True) for _ in range(8)]
        raised = [a for a in alarms if a is not None]
        assert len(raised) == 1
        assert raised[0].slo == "serving.latency_p95"
        assert raised[0].burn_fast >= 1.0
        assert tracker.firing()

    def test_alarm_clears_when_burn_decays(self):
        clock = FakeClock()
        tracker = SloTracker(RULE, clock=clock)
        for _ in range(8):
            tracker.observe(bad=True)
        assert tracker.firing()
        clock.advance(120.0)  # both windows empty now
        assert not tracker.firing()
        # Good traffic then a fresh burn raises a second edge alarm.
        for _ in range(8):
            assert tracker.observe(bad=False) is None
        second = [tracker.observe(bad=True) for _ in range(30)]
        assert sum(a is not None for a in second) == 1

    def test_fast_only_spike_does_not_fire(self):
        """Both windows must burn: a burst after a long good history stays quiet."""
        clock = FakeClock()
        rule = SloRule(
            "x", budget=0.5, threshold_ms=100.0, fast_window_s=5.0,
            slow_window_s=60.0, burn_threshold=1.0, min_events=2,
        )
        tracker = SloTracker(rule, clock=clock)
        for _ in range(200):  # 200 good decisions spread over the slow window
            tracker.observe(bad=False)
            clock.advance(0.25)
        for _ in range(25):  # burst: fast window burns past 1.0, slow does not
            alarm = tracker.observe(bad=True)
            assert alarm is None
        assert tracker.burn_rate(rule.fast_window_s) >= 1.0
        assert tracker.burn_rate(rule.slow_window_s) < 1.0

    def test_burn_semantics_budget_is_p95(self):
        clock = FakeClock()
        tracker = SloTracker(RULE, clock=clock)
        # 5% bad at budget 0.05 is exactly burn 1.0.
        for k in range(100):
            tracker.observe(bad=(k % 20 == 0))
        assert tracker.burn_rate(RULE.fast_window_s) == pytest.approx(1.0)


class TestSloMonitor:
    def test_latency_and_fail_closed_rules(self):
        clock = FakeClock()
        monitor = SloMonitor(rules=(RULE,), clock=clock)
        for _ in range(8):
            monitor.observe_decision(500.0, reason="non-facing")
        assert [a["slo"] for a in monitor.active_alarms()] == ["serving.latency_p95"]

        fail_rule = SloRule(
            "serving.fail_closed", budget=0.05, threshold_ms=None,
            fast_window_s=10.0, slow_window_s=60.0, min_events=5,
        )
        monitor = SloMonitor(rules=(fail_rule,), clock=FakeClock())
        for _ in range(8):
            monitor.observe_decision(1.0, reason="degraded-input")
        assert [a["slo"] for a in monitor.active_alarms()] == ["serving.fail_closed"]
        monitor = SloMonitor(rules=(fail_rule,), clock=FakeClock())
        for _ in range(8):
            monitor.observe_decision(1.0, reason="accepted")
        assert monitor.active_alarms() == []

    def test_alarms_land_in_registry_and_audit(self):
        set_obs_enabled(True)
        monitor = SloMonitor(rules=(RULE,), clock=FakeClock())
        for _ in range(8):
            monitor.observe_decision(500.0, reason=None)
        assert REGISTRY.counter("monitor.slo_alarms", slo="serving.latency_p95").value == 1
        events = [r for r in audit_log().records() if r["event"] == "slo-alarm"]
        assert len(events) == 1 and events[0]["slo"] == "serving.latency_p95"

    def test_snapshot_is_json_shaped(self):
        import json

        monitor = SloMonitor(rules=(RULE,), clock=FakeClock())
        monitor.observe_decision(500.0)
        snapshot = monitor.snapshot()
        json.dumps(snapshot)
        assert "serving.latency_p95" in snapshot["rules"]
        assert snapshot["rules"]["serving.latency_p95"]["events_fast"] == 1


class TestGlobalFeed:
    def test_gated_on_monitor_enabled(self):
        reset_slo_monitor(rules=(RULE,), clock=FakeClock())
        slo_observe_decision(500.0)  # obs off: dropped
        assert slo_monitor().snapshot()["rules"]["serving.latency_p95"]["events_fast"] == 0
        set_obs_enabled(True)
        slo_observe_decision(500.0)
        assert slo_monitor().snapshot()["rules"]["serving.latency_p95"]["events_fast"] == 1


class TestDefaultRules:
    def test_defaults(self):
        rules = {rule.name: rule for rule in default_slo_rules()}
        assert rules["serving.latency_p95"].threshold_ms == DEFAULT_SLO_LATENCY_MS
        assert rules["serving.fail_closed"].threshold_ms is None
        assert rules["serving.latency_p95"].budget == 0.05

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_LIVE_SLO_P95_MS", "2500")
        monkeypatch.setenv("REPRO_LIVE_SLO_BUDGET", "0.1")
        monkeypatch.setenv("REPRO_LIVE_SLO_MIN_EVENTS", "3")
        rules = {rule.name: rule for rule in default_slo_rules()}
        assert rules["serving.latency_p95"].threshold_ms == 2500.0
        assert rules["serving.latency_p95"].budget == 0.1
        assert rules["serving.fail_closed"].min_events == 3

    def test_malformed_override_warns_once_and_falls_back(self, monkeypatch):
        monkeypatch.setattr(obs_control, "_WARNED", set())
        monkeypatch.setenv("REPRO_LIVE_SLO_P95_MS", "-5")
        with pytest.warns(RuntimeWarning, match="REPRO_LIVE_SLO_P95_MS"):
            rules = {rule.name: rule for rule in default_slo_rules()}
        assert rules["serving.latency_p95"].threshold_ms == DEFAULT_SLO_LATENCY_MS
