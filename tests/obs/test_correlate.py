"""Correlation ids: context-local binding, audit/span/worker attachment."""

import asyncio

from repro.obs import (
    audit_log,
    audit_record,
    correlated,
    correlation_id,
    set_correlation,
    set_obs_enabled,
    span,
    span_records,
)
from repro.obs.workers import ObsContext, current_context, init_worker


class TestBinding:
    def test_default_is_none(self):
        assert correlation_id() is None

    def test_correlated_scopes_and_restores(self):
        with correlated("s0-u0001"):
            assert correlation_id() == "s0-u0001"
            with correlated("s0-u0002"):
                assert correlation_id() == "s0-u0002"
            assert correlation_id() == "s0-u0001"
        assert correlation_id() is None

    def test_falsy_binding_means_unset(self):
        set_correlation("outer")
        with correlated(""):
            assert correlation_id() is None
        assert correlation_id() == "outer"

    def test_asyncio_tasks_inherit_the_binding(self):
        async def child():
            return correlation_id()

        async def main():
            with correlated("s1-u0001"):
                inherited = asyncio.ensure_future(child())
            with correlated("s2-u0001"):
                pass
            return await inherited

        # The task snapshots the context at creation; later rebinding
        # in the parent never leaks into it.
        assert asyncio.run(main()) == "s1-u0001"


class TestAttachment:
    def test_audit_records_carry_corr(self):
        set_obs_enabled(True)
        with correlated("s0-u0003"):
            audit_record("serving", utterance=3)
        audit_record("serving", utterance=4)
        records = audit_log().records()
        assert records[0]["corr"] == "s0-u0003"
        assert "corr" not in records[1]

    def test_explicit_corr_field_wins(self):
        set_obs_enabled(True)
        with correlated("ambient"):
            audit_record("event", corr="explicit")
        assert audit_log().records()[0]["corr"] == "explicit"

    def test_spans_carry_corr_label(self):
        set_obs_enabled(True)
        with correlated("s0-u0005"):
            with span("gate.decision"):
                pass
        with span("uncorrelated"):
            pass
        by_name = {record.name: dict(record.labels) for record in span_records()}
        assert by_name["gate.decision"]["corr"] == "s0-u0005"
        assert "corr" not in by_name["uncorrelated"]

    def test_worker_context_ships_the_binding(self):
        set_obs_enabled(True)
        with correlated("s0-u0007"):
            context = current_context()
        assert context.correlation == "s0-u0007"
        # Worker side: init_worker installs the parent's binding.
        init_worker(ObsContext(enabled=True, run_id=None, correlation="s0-u0007"))
        assert correlation_id() == "s0-u0007"
