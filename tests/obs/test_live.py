"""Live telemetry plane: endpoints, probe, correlation, SLO readiness.

Lightweight endpoint tests drive the sidecar against a stub pipeline
(the HTTP plane never touches the pipeline); the correlation and
overload tests stream real utterances through a trained gateway.
"""

import asyncio
import json
import re
import threading

import pytest

from repro.obs import REGISTRY, audit_log, set_obs_enabled, span_records
from repro.obs import control as obs_control
from repro.obs import live as obs_live
from repro.obs.live import DEFAULT_LIVE_PORT, LiveConfig, render_dashboard
from repro.obs import monitor
from repro.obs.monitor import SloRule, reset_slo_monitor, slo_monitor
from repro.serving import ServingConfig, ServingGateway
from repro.serving.replay import close_session, open_session, stream_utterance


class _StubArray:
    n_mics = 4
    sample_rate = 48_000


class _StubPipeline:
    array = _StubArray()


async def http_get(host: str, port: int, path: str, method: str = "GET"):
    """Minimal HTTP/1.1 client over asyncio (the sidecar closes per request)."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"{method} {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        key, _, value = line.partition(":")
        headers[key.strip().lower()] = value.strip()
    return status, headers, body


async def _with_live_gateway(body, *, config=None, live=None, pipeline=None):
    gateway = ServingGateway(
        pipeline or _StubPipeline(),
        config or ServingConfig(port=0, check_liveness=False),
        live_config=live or LiveConfig(port=0),
    )
    await gateway.start()
    try:
        host, port = gateway.live.address
        return await body(gateway, host, port)
    finally:
        await gateway.stop()


class TestEndpoints:
    def test_all_six_routes_serve(self):
        async def body(gateway, host, port):
            out = {}
            for path in obs_live.ROUTES:
                out[path] = await http_get(host, port, path)
            return out

        out = asyncio.run(_with_live_gateway(body))
        for path, (status, headers, _) in out.items():
            assert status == 200, path
        assert out["/metrics"][1]["content-type"].startswith("text/plain; version=0.0.4")
        health = json.loads(out["/healthz"][2])
        assert health["status"] == "ok" and health["sessions"] == 0
        ready = json.loads(out["/readyz"][2])
        assert ready["ready"] is True and ready["admission"]["open"] is True
        assert ready["pool"]["pool"] == "none"
        assert json.loads(out["/sessions"][2]) == {"sessions": []}
        alarms = json.loads(out["/alarms"][2])
        assert alarms["active"] == [] and alarms["history"] == []
        quality = json.loads(out["/quality"][2])
        assert quality["name"] == "live"
        assert monitor.validate(quality) == []

    def test_metrics_is_valid_prometheus_text(self):
        set_obs_enabled(True)
        REGISTRY.counter("serving.wakes", gated="True").inc(3)
        REGISTRY.gauge("serving.active_sessions").set(2)
        REGISTRY.histogram("serving.decision_ms").observe(12.0)
        REGISTRY.windowed("serving.rps").inc()

        async def body(gateway, host, port):
            return await http_get(host, port, "/metrics")

        status, _, payload = asyncio.run(_with_live_gateway(body))
        assert status == 200
        sample = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\n]*"'
            r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\n]*")*\})? [^ \n]+$'
        )
        lines = payload.decode().splitlines()
        assert lines, "metrics body is empty"
        for line in lines:
            if line.startswith("# TYPE "):
                assert re.match(r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* \w+$", line)
            else:
                assert sample.match(line), f"invalid sample line: {line!r}"
        text = "\n".join(lines)
        assert "serving_wakes_total" in text
        assert "serving_rps_rate" in text

    def test_unknown_route_404_and_non_get_405(self):
        async def body(gateway, host, port):
            return (
                await http_get(host, port, "/nope"),
                await http_get(host, port, "/metrics", method="POST"),
            )

        (status404, _, body404), (status405, _, _) = asyncio.run(_with_live_gateway(body))
        assert status404 == 404
        assert json.loads(body404)["routes"] == list(obs_live.ROUTES)
        assert status405 == 405

    def test_sessions_lists_connected_devices(self):
        async def body(gateway, host, port):
            gw_host, gw_port = gateway.address
            reader, writer, hello = await open_session(gw_host, gw_port)
            try:
                _, _, payload = await http_get(host, port, "/sessions")
            finally:
                await close_session(writer)
            return hello, json.loads(payload)

        hello, listing = asyncio.run(_with_live_gateway(body))
        assert len(listing["sessions"]) == 1
        row = listing["sessions"][0]
        assert row["session"] == hello["session"]
        assert row["streaming"] is False and row["utterances"] == 0
        assert row["ring"]["length"] == 0 and row["ring"]["capacity"] > 0

    def test_probe_writes_load_gauges(self):
        async def body(gateway, host, port):
            await asyncio.sleep(0.25)
            return REGISTRY.snapshot()

        snapshot = asyncio.run(
            _with_live_gateway(body, live=LiveConfig(port=0, probe_interval_s=0.05))
        )
        assert snapshot["live.event_loop_lag_ms"]["type"] == "gauge"
        assert snapshot["serving.open_sessions"]["value"] == 0.0
        assert "serving.ring_occupancy_max" in snapshot
        assert "serving.ring_dropped_samples" in snapshot


class TestOffByDefault:
    def test_no_sidecar_without_opt_in(self, monkeypatch):
        monkeypatch.delenv("REPRO_LIVE", raising=False)

        async def body():
            gateway = ServingGateway(_StubPipeline(), ServingConfig(port=0))
            await gateway.start()
            try:
                await asyncio.sleep(0.1)
                return gateway.live
            finally:
                await gateway.stop()

        assert asyncio.run(body()) is None
        # No probe task ran: the registry saw no load gauges.
        assert REGISTRY.snapshot() == {}

    def test_env_flag_opts_in(self, monkeypatch):
        monkeypatch.setenv("REPRO_LIVE", "1")
        monkeypatch.setenv("REPRO_LIVE_PORT", "0")

        async def body():
            gateway = ServingGateway(_StubPipeline(), ServingConfig(port=0))
            await gateway.start()
            try:
                assert gateway.live is not None
                host, port = gateway.live.address
                status, _, _ = await http_get(host, port, "/healthz")
                return status
            finally:
                await gateway.stop()

        assert asyncio.run(body()) == 200


class TestLiveConfig:
    def test_defaults(self, monkeypatch):
        for name in ("REPRO_LIVE_HOST", "REPRO_LIVE_PORT", "REPRO_LIVE_PROBE_S"):
            monkeypatch.delenv(name, raising=False)
        config = LiveConfig.from_env()
        assert config == LiveConfig("127.0.0.1", DEFAULT_LIVE_PORT, 1.0)

    def test_env_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_LIVE_HOST", "0.0.0.0")
        monkeypatch.setenv("REPRO_LIVE_PORT", "9999")
        monkeypatch.setenv("REPRO_LIVE_PROBE_S", "0.5")
        assert LiveConfig.from_env() == LiveConfig("0.0.0.0", 9999, 0.5)

    def test_malformed_knob_warns_once_and_falls_back(self, monkeypatch):
        monkeypatch.setattr(obs_control, "_WARNED", set())
        monkeypatch.setenv("REPRO_LIVE_PORT", "not-a-port")
        with pytest.warns(RuntimeWarning, match="REPRO_LIVE_PORT"):
            config = LiveConfig.from_env()
        assert config.port == DEFAULT_LIVE_PORT
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert LiveConfig.from_env().port == DEFAULT_LIVE_PORT  # silent now


class TestWatch:
    def test_render_dashboard_is_pure_and_complete(self):
        frame = render_dashboard(
            "http://x:1",
            {"status": "ok", "uptime_s": 12.0},
            {
                "ready": False,
                "admission": {"sessions": 2, "max_sessions": 2, "open": False},
                "pool": {"pool": "none"},
            },
            {
                "sessions": [
                    {
                        "session": "s000001",
                        "mode": "headtalk",
                        "streaming": True,
                        "gated": True,
                        "utterance_id": "s000001-u0002",
                        "ring": {"occupancy": 0.42, "dropped": 7},
                    }
                ]
            },
            {
                "active": [
                    {
                        "slo": "serving.latency_p95",
                        "burn_fast": 20.0,
                        "burn_slow": 18.0,
                        "burn_threshold": 1.0,
                    }
                ]
            },
        )
        assert "ready NO" in frame
        assert "sessions 2/2" in frame
        assert "s000001" in frame and "gated" in frame and "s000001-u0002" in frame
        assert " 42.0%" in frame and "dropped=7" in frame
        assert "serving.latency_p95" in frame and "burn fast=20.00" in frame

    def test_render_dashboard_empty_state(self):
        frame = render_dashboard(
            "http://x:1",
            {"status": "ok", "uptime_s": 1.0},
            {"ready": True, "admission": {}, "pool": {}},
            {"sessions": []},
            {"active": []},
        )
        assert "(none connected)" in frame and "(none firing)" in frame

    def test_watch_once_against_a_live_gateway(self, capsys):
        started, stop = threading.Event(), threading.Event()
        state = {}

        def server():
            async def run():
                gateway = ServingGateway(
                    _StubPipeline(),
                    ServingConfig(port=0, check_liveness=False),
                    live_config=LiveConfig(port=0),
                )
                await gateway.start()
                state["addr"] = gateway.live.address
                started.set()
                while not stop.is_set():
                    await asyncio.sleep(0.02)
                await gateway.stop()

            asyncio.run(run())

        thread = threading.Thread(target=server)
        thread.start()
        try:
            assert started.wait(10)
            host, port = state["addr"]
            rc = obs_live.main(["watch", "--once", "--url", f"http://{host}:{port}"])
        finally:
            stop.set()
            thread.join()
        assert rc == 0
        out = capsys.readouterr().out
        assert "repro.obs.live" in out and "SESSIONS" in out

    def test_watch_unreachable_is_graceful(self, capsys):
        assert obs_live.main(["watch", "--once", "--url", "http://127.0.0.1:1"]) == 0
        assert "unreachable" in capsys.readouterr().out


GATED = ServingConfig(port=0, check_liveness=False)


class TestCorrelation:
    def test_one_grep_reconstructs_an_utterance(self, trained_pipeline, backward_capture):
        """Acceptance: every audit record and span of a gated utterance
        carries the same correlation id, and the audit log alone
        reconstructs the utterance end to end."""
        set_obs_enabled(True)

        async def body(gateway, host, port):
            gw_host, gw_port = gateway.address
            reader, writer, hello = await open_session(gw_host, gw_port)
            try:
                first = await stream_utterance(reader, writer, backward_capture)
                second = await stream_utterance(reader, writer, backward_capture)
            finally:
                await close_session(writer)
            return hello, first, second

        hello, first, second = asyncio.run(_with_live_gateway(body, pipeline=trained_pipeline))
        uid = first["wake"]["utterance_id"]
        assert uid == f"{hello['session']}-u0001"
        assert first["decision"]["utterance_id"] == uid
        assert second["wake"]["utterance_id"] == f"{hello['session']}-u0002"

        # One grep of the audit log: every stage of utterance 1.
        trace = [r for r in audit_log().records() if r.get("corr") == uid]
        events = [r["event"] for r in trace]
        assert "decision" in events  # pipeline verdict
        assert "gate" in events  # controller application
        assert "serving" in events  # session close-out
        decision = next(r for r in trace if r["event"] == "decision")
        serving = next(r for r in trace if r["event"] == "serving")
        assert decision["accepted"] == first["decision"]["accepted"]
        assert serving["utterance_id"] == uid
        assert "worker_cache" in decision  # pool-worker telemetry rides along
        # Nothing from utterance 2 leaked into utterance 1's trace.
        assert all(r.get("utterance", 1) == 1 for r in trace)

        # Spans carry the same id as a label.
        labelled = [
            record
            for record in span_records()
            if dict(record.labels).get("corr") == uid
        ]
        assert labelled, "no spans carried the correlation id"

    def test_standalone_pipeline_has_no_corr(self, trained_pipeline, backward_capture):
        set_obs_enabled(True)
        trained_pipeline.evaluate(backward_capture, check_liveness=False)
        records = audit_log().records()
        assert records and all("corr" not in r for r in records)


TIGHT_RULES = (
    SloRule(
        "serving.latency_p95",
        budget=0.05,
        threshold_ms=0.0001,  # every real decision is "bad": burn ~ 20
        fast_window_s=5.0,
        slow_window_s=10.0,
        burn_threshold=1.0,
        min_events=2,
    ),
)

HEALTHY_RULES = (
    SloRule(
        "serving.latency_p95",
        budget=0.05,
        threshold_ms=60_000.0,  # no sane decision is an hour late
        fast_window_s=5.0,
        slow_window_s=10.0,
        burn_threshold=1.0,
        min_events=2,
    ),
)


class TestOverloadReadiness:
    def test_overload_trips_burn_alarm_and_readyz(self, trained_pipeline, backward_capture):
        """Acceptance: induced overload (admission saturated + latency SLO
        burn) raises the alarm and flips ``/readyz`` to 503."""
        set_obs_enabled(True)
        reset_slo_monitor(rules=TIGHT_RULES)
        config = ServingConfig(port=0, check_liveness=False, max_sessions=1)

        async def body(gateway, host, port):
            gw_host, gw_port = gateway.address
            reader, writer, hello = await open_session(gw_host, gw_port)
            try:
                for _ in range(3):
                    await stream_utterance(reader, writer, backward_capture)
                # A second device is refused: admission is saturated.
                r2, w2, refused = await open_session(gw_host, gw_port)
                w2.close()
                ready = await http_get(host, port, "/readyz")
                alarms = await http_get(host, port, "/alarms")
            finally:
                await close_session(writer)
            return refused, ready, alarms

        refused, (status, _, ready_body), (_, _, alarms_body) = asyncio.run(
            _with_live_gateway(body, config=config, pipeline=trained_pipeline)
        )
        assert refused.get("error") == "busy"
        assert status == 503
        detail = json.loads(ready_body)
        assert detail["ready"] is False
        assert detail["admission"]["open"] is False
        assert "serving.latency_p95" in detail["alarms"]
        active = json.loads(alarms_body)["active"]
        assert [a["slo"] for a in active] == ["serving.latency_p95"]
        assert json.loads(alarms_body)["history"]  # the rising edge was recorded
        assert REGISTRY.counter("monitor.slo_alarms", slo="serving.latency_p95").value == 1

    def test_healthy_baseline_keeps_zero_alarms(self, trained_pipeline, backward_capture):
        set_obs_enabled(True)
        reset_slo_monitor(rules=HEALTHY_RULES)

        async def body(gateway, host, port):
            gw_host, gw_port = gateway.address
            reader, writer, _ = await open_session(gw_host, gw_port)
            try:
                for _ in range(2):
                    await stream_utterance(reader, writer, backward_capture)
                ready = await http_get(host, port, "/readyz")
                alarms = await http_get(host, port, "/alarms")
            finally:
                await close_session(writer)
            return ready, alarms

        (status, _, _), (_, _, alarms_body) = asyncio.run(
            _with_live_gateway(body, config=GATED, pipeline=trained_pipeline)
        )
        assert status == 200
        assert json.loads(alarms_body) == {"active": [], "history": []}
        assert slo_monitor().active_alarms() == []
