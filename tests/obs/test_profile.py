"""Profiling hooks: opt-in capture, no-op default, nesting guard."""

import json

from repro.obs import (
    clear_profiles,
    profile_snapshot,
    profiled,
    profiling_enabled,
    set_profiling_enabled,
)
from repro.obs.profile import NOOP_PROFILE


def _allocate_some():
    return sum(len(str(n)) for n in range(20_000)) + len([0.0] * 50_000)


class TestDisabled:
    def test_noop_is_shared_and_records_nothing(self):
        assert profiling_enabled() is False
        scope = profiled("never")
        assert scope is NOOP_PROFILE
        with scope:
            _allocate_some()
        assert profile_snapshot() == {}


class TestEnabled:
    def test_captures_peak_and_top_functions(self):
        set_profiling_enabled(True)
        with profiled("region.alloc"):
            _allocate_some()
        snapshot = profile_snapshot()
        record = snapshot["region.alloc"]
        assert record["duration_ms"] > 0
        assert record["tracemalloc_peak_bytes"] > 0
        assert record["top"], "cProfile rows expected"
        assert {"function", "ncalls", "tottime_s", "cumtime_s"} <= set(record["top"][0])
        # Rows are sorted by cumulative time, descending.
        cumtimes = [row["cumtime_s"] for row in record["top"]]
        assert cumtimes == sorted(cumtimes, reverse=True)
        json.dumps(snapshot)

    def test_top_n_bounds_rows(self):
        set_profiling_enabled(True)
        with profiled("region.small", top_n=2):
            _allocate_some()
        assert len(profile_snapshot()["region.small"]["top"]) <= 2

    def test_nested_regions_outermost_wins(self):
        set_profiling_enabled(True)
        with profiled("outer"):
            with profiled("inner"):
                _allocate_some()
        snapshot = profile_snapshot()
        assert "outer" in snapshot
        assert "inner" not in snapshot
        # The guard releases on exit: a later region records normally.
        with profiled("after"):
            pass
        assert "after" in profile_snapshot()

    def test_clear_profiles(self):
        set_profiling_enabled(True)
        with profiled("gone"):
            pass
        clear_profiles()
        assert profile_snapshot() == {}

    def test_toggle(self):
        set_profiling_enabled(True)
        assert profiling_enabled() is True
        set_profiling_enabled(False)
        assert profiling_enabled() is False
        assert profiled("off") is NOOP_PROFILE
