"""Run manifests: schema round-trip, validation, wiring, diffing."""

import dataclasses
import json

import numpy as np
import pytest

from repro.experiments.common import run_with_manifest, write_run_manifest
from repro.obs.runlog import (
    SCHEMA,
    RunManifest,
    default_manifest_dir,
    diff_manifests,
    jsonable,
    manifest_path,
    repo_git_sha,
    validate,
)
from repro.reporting import ExperimentResult


def _result(experiment_id="E99"):
    return ExperimentResult(
        experiment_id=experiment_id,
        title="Stub experiment",
        headers=["k", "v"],
        rows=[{"k": "a", "v": 1.0}],
        paper="(none)",
        summary={"total": 1.0},
    )


class TestJsonable:
    def test_passthrough_and_containers(self):
        assert jsonable({"a": (1, 2), "b": {3}}) == {"a": [1, 2], "b": [3]}
        assert jsonable(None) is None
        assert jsonable("x") == "x"

    def test_numpy_duck_typing(self):
        assert jsonable(np.float64(1.5)) == 1.5
        assert jsonable(np.arange(3)) == [0, 1, 2]

    def test_dataclass_and_fallback(self):
        @dataclasses.dataclass
        class Config:
            n: int = 3

        assert jsonable(Config()) == {"n": 3}
        assert jsonable(object()).startswith("<object")


class TestRunManifest:
    def test_write_load_round_trip(self, tmp_path):
        manifest = RunManifest(
            "E18", seed=3, config={"scale": "BENCH", "angles": (0.0, 180.0)}, run_id="r1"
        )
        manifest.add_stage("liveness", 41.7)
        manifest.add_stage("orientation", np.float64(136.2))
        manifest.metrics = {"pipeline.decisions": {"type": "counter", "value": 4.0}}
        manifest.summary = {"total_ms": 180.2}
        path = manifest.write(directory=tmp_path)
        assert path == tmp_path / "RUN_E18.json"
        loaded = RunManifest.load(path)
        assert loaded.to_dict() == manifest.to_dict()
        assert loaded.to_dict() == json.loads(path.read_text())
        assert loaded.seed == 3
        assert loaded.stages["orientation"] == pytest.approx(136.2)

    def test_document_shape(self):
        document = RunManifest("E01").to_dict()
        assert document["schema"] == SCHEMA
        assert validate(document) == []
        # The auto-detected SHA matches the repo (this test runs in it).
        assert document["git_sha"] == repo_git_sha()
        assert document["env"]  # fingerprint is populated

    def test_explicit_path_overrides_directory(self, tmp_path):
        target = tmp_path / "nested" / "custom.json"
        written = RunManifest("E02").write(path=target)
        assert written == target and target.exists()

    def test_refuses_invalid(self, tmp_path):
        manifest = RunManifest("E03")
        manifest.stages["bad"] = "not-a-number"
        with pytest.raises(ValueError, match="invalid manifest"):
            manifest.write(directory=tmp_path)

    def test_manifest_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_MANIFEST_DIR", str(tmp_path))
        assert default_manifest_dir() == tmp_path
        assert manifest_path("E18") == tmp_path / "RUN_E18.json"


class TestValidate:
    def test_not_an_object(self):
        assert validate([]) == ["document is not a JSON object"]

    def test_catches_field_problems(self):
        document = RunManifest("E01").to_dict()
        document["schema"] = "repro.obs.runlog/0"
        document["name"] = ""
        document["seed"] = "zero"
        document["stages"] = {"run": "fast"}
        problems = validate(document)
        assert any("schema" in p for p in problems)
        assert any("name" in p for p in problems)
        assert any("seed" in p for p in problems)
        assert any("stages['run']" in p for p in problems)


class TestExperimentWiring:
    def test_write_run_manifest(self, tmp_path):
        path = write_run_manifest(
            _result(),
            seed=5,
            config={"scale": "TINY"},
            stages={"run": 12.0},
            manifest_dir=tmp_path,
        )
        assert path == tmp_path / "RUN_E99.json"
        loaded = RunManifest.load(path)
        assert loaded.seed == 5
        assert loaded.config == {"scale": "TINY"}
        assert loaded.stages == {"run": 12.0}
        assert loaded.summary["title"] == "Stub experiment"
        assert loaded.summary["rows"] == [{"k": "a", "v": 1.0}]

    def test_run_with_manifest_stub_runner(self, tmp_path):
        calls = {}

        def runner(scale="TINY", seed=0):
            calls["kwargs"] = {"scale": scale, "seed": seed}
            return _result("E42")

        result, path = run_with_manifest(
            "E42", runner=runner, manifest_dir=tmp_path, scale="BENCH", seed=9
        )
        assert calls["kwargs"] == {"scale": "BENCH", "seed": 9}
        assert result.experiment_id == "E42"
        loaded = RunManifest.load(path)
        assert loaded.seed == 9
        assert loaded.config == {"scale": "BENCH"}
        assert loaded.stages["run"] > 0

    def test_unknown_experiment_id(self, tmp_path):
        with pytest.raises(ValueError, match="unknown experiment id"):
            run_with_manifest("E00", manifest_dir=tmp_path)


class TestDiffManifests:
    def _pair(self):
        baseline = RunManifest("E18", seed=0, config={"scale": "BENCH"})
        baseline.stages = {"liveness": 40.0, "orientation": 100.0}
        baseline.summary = {"total_ms": 140.0}
        current = RunManifest("E18", seed=0, config={"scale": "BENCH"})
        current.stages = {"liveness": 40.0, "orientation": 150.0}
        current.summary = {"total_ms": 190.0}
        return baseline.to_dict(), current.to_dict()

    def test_identical_runs_diff_empty(self):
        document = RunManifest("E18", seed=0).to_dict()
        assert diff_manifests(document, document) == []

    def test_reports_stage_and_summary_changes(self):
        baseline, current = self._pair()
        lines = diff_manifests(baseline, current)
        assert "stage orientation: 100.0 ms -> 150.0 ms (+50%)" in lines
        assert "summary.total_ms: 140.0 -> 190.0" in lines
        assert not any(line.startswith("stage liveness") for line in lines)

    def test_reports_identity_changes(self):
        baseline, current = self._pair()
        current["seed"] = 1
        current["git_sha"] = "deadbeef"
        lines = diff_manifests(baseline, current)
        assert any(line.startswith("seed:") for line in lines)
        assert any(line.startswith("git_sha:") for line in lines)
