"""Audit log: in-memory ring, JSONL sink round-trip, no-op mode."""

import json
import threading

from repro.obs import (
    audit_log,
    audit_record,
    configure_audit,
    read_jsonl,
    set_obs_enabled,
)
from repro.obs.audit import AuditLog


class TestRing:
    def test_records_kept_in_order(self):
        log = AuditLog()
        log.log({"event": "a"})
        log.log({"event": "b"})
        assert [r["event"] for r in log.records()] == ["a", "b"]

    def test_ts_added_once(self):
        log = AuditLog()
        stamped = log.log({"event": "x"})
        assert stamped["ts"] > 0
        fixed = log.log({"event": "y", "ts": 123.0})
        assert fixed["ts"] == 123.0

    def test_capacity_bounds_ring(self):
        log = AuditLog(capacity=3)
        for k in range(5):
            log.log({"event": str(k)})
        assert [r["event"] for r in log.records()] == ["2", "3", "4"]

    def test_clear_leaves_sink_alone(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        log = AuditLog(path=path)
        log.log({"event": "kept-on-disk"})
        log.clear()
        assert log.records() == []
        assert len(read_jsonl(path)) == 1


class TestJsonlSink:
    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        log = AuditLog(path=path)
        records = [
            {"event": "decision", "accepted": True, "total_ms": 12.5},
            {"event": "decision", "accepted": False, "reason": "non-facing"},
        ]
        for record in records:
            log.log(record)
        loaded = read_jsonl(path)
        assert len(loaded) == 2
        for original, back in zip(records, loaded):
            for key, value in original.items():
                assert back[key] == value
            assert "ts" in back

    def test_append_across_instances(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        AuditLog(path=path).log({"event": "first"})
        AuditLog(path=path).log({"event": "second"})
        assert [r["event"] for r in read_jsonl(path)] == ["first", "second"]

    def test_read_jsonl_skips_blank_lines(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        path.write_text('{"event": "a"}\n\n{"event": "b"}\n')
        assert [r["event"] for r in read_jsonl(path)] == ["a", "b"]


class TestPersistentHandle:
    def test_handle_opened_once_and_reused(self, tmp_path):
        log = AuditLog(path=tmp_path / "audit.jsonl")
        assert log._handle is None  # lazy: nothing opened before a write
        log.log({"event": "a"})
        handle = log._handle
        assert handle is not None
        log.log({"event": "b"})
        assert log._handle is handle
        assert len(read_jsonl(log.path)) == 2

    def test_close_then_log_reopens(self, tmp_path):
        log = AuditLog(path=tmp_path / "audit.jsonl")
        log.log({"event": "a"})
        log.close()
        assert log._handle is None
        log.log({"event": "b"})  # appends, never truncates
        assert [r["event"] for r in read_jsonl(log.path)] == ["a", "b"]

    def test_flush_without_sink_is_noop(self):
        AuditLog().flush()  # memory-only log: must not raise

    def test_configure_closes_old_handle_and_repoints(self, tmp_path):
        first = tmp_path / "first.jsonl"
        second = tmp_path / "second.jsonl"
        log = AuditLog(path=first)
        log.log({"event": "a"})
        old_handle = log._handle
        log.configure(path=second)
        assert old_handle.closed
        assert log._handle is None
        log.log({"event": "b"})
        assert [r["event"] for r in read_jsonl(first)] == ["a"]
        assert [r["event"] for r in read_jsonl(second)] == ["b"]

    def test_configure_to_memory_only_closes_sink(self, tmp_path):
        log = AuditLog(path=tmp_path / "audit.jsonl")
        log.log({"event": "a"})
        log.configure(path=None)
        assert log._handle is None and log.path is None
        log.log({"event": "b"})  # memory only now
        assert len(read_jsonl(tmp_path / "audit.jsonl")) == 1

    def test_interleaved_writers_never_interleave_lines(self, tmp_path):
        """Concurrent writers share one line-buffered handle: every line
        in the sink must parse as exactly one record."""
        path = tmp_path / "audit.jsonl"
        log = AuditLog(path=path)
        n_threads, n_records = 8, 50
        payload = "x" * 500  # long enough that torn writes would show

        def writer(thread_id):
            for k in range(n_records):
                log.log({"event": f"t{thread_id}-{k}", "payload": payload})

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        log.flush()
        lines = path.read_text().splitlines()
        assert len(lines) == n_threads * n_records
        events = set()
        for line in lines:
            record = json.loads(line)  # raises on a torn/interleaved line
            assert record["payload"] == payload
            events.add(record["event"])
        assert len(events) == n_threads * n_records  # nothing lost or doubled


class TestGlobalLog:
    def test_disabled_records_nothing(self):
        audit_record("decision", accepted=True)
        assert audit_log().records() == []

    def test_enabled_records_event(self):
        set_obs_enabled(True)
        audit_record("decision", accepted=True, reason="accepted")
        (record,) = audit_log().records()
        assert record["event"] == "decision"
        assert record["accepted"] is True

    def test_configure_points_sink(self, tmp_path):
        set_obs_enabled(True)
        path = tmp_path / "global.jsonl"
        configure_audit(path=path)
        audit_record("decision", accepted=False)
        assert read_jsonl(path)[0]["accepted"] is False

    def test_configure_capacity_preserves_tail(self):
        log = audit_log()
        for k in range(4):
            log.log({"event": str(k)})
        log.configure(capacity=2)
        assert [r["event"] for r in log.records()] == ["2", "3"]
