"""Truthy-env parsing and the observability master switch."""

import pytest

from repro.obs import observed, obs_enabled, set_obs_enabled
from repro.obs.control import env_truthy, truthy


class TestTruthy:
    @pytest.mark.parametrize("value", ["1", "true", "TRUE", "Yes", " on ", "On"])
    def test_truthy_spellings(self, value):
        assert truthy(value) is True

    @pytest.mark.parametrize("value", ["0", "false", "FALSE", "No", " off ", ""])
    def test_falsy_spellings(self, value):
        assert truthy(value, default=True) is False

    @pytest.mark.parametrize("default", [False, True])
    def test_unrecognized_falls_back_to_default(self, default):
        assert truthy("maybe", default=default) is default
        assert truthy(None, default=default) is default

    def test_non_string_values_coerced(self):
        assert truthy(1) is True
        assert truthy(0, default=True) is False


class TestEnvTruthy:
    def test_missing_variable_uses_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_FLAG", raising=False)
        assert env_truthy("REPRO_TEST_FLAG") is False
        assert env_truthy("REPRO_TEST_FLAG", default=True) is True

    def test_set_variable_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLAG", "On")
        assert env_truthy("REPRO_TEST_FLAG") is True
        monkeypatch.setenv("REPRO_TEST_FLAG", "off")
        assert env_truthy("REPRO_TEST_FLAG", default=True) is False


class TestMasterSwitch:
    def test_set_obs_enabled(self):
        assert obs_enabled() is False
        set_obs_enabled(True)
        assert obs_enabled() is True

    def test_observed_scope_restores(self):
        with observed():
            assert obs_enabled() is True
        assert obs_enabled() is False
        set_obs_enabled(True)
        with observed(False):
            assert obs_enabled() is False
        assert obs_enabled() is True
