"""Decision-quality monitor: slices, drift detectors, replay, CLI gate.

The drift tests replay seeded synthetic score streams through the
monitor — stationary streams must stay silent, a sustained 0.5σ shift
must trip PSI, KS and Page–Hinkley.  FAR/FRR/ECE parity tests recompute
the streamed numbers offline with :mod:`repro.ml.metrics` /
:mod:`repro.ml.calibration` and demand exact agreement (that identity is
what makes replayed quality reports trustworthy).
"""

import json
import random
import warnings

import numpy as np
import pytest

from repro.acoustics import Capture
from repro.core import HeadTalkConfig, HeadTalkPipeline
from repro.ml.calibration import brier_score, expected_calibration_error
from repro.ml.metrics import false_acceptance_rate, false_rejection_rate
from repro.obs import REGISTRY, audit_log, configure_audit, set_obs_enabled
from repro.obs import control as obs_control
from repro.obs.monitor import (
    DecisionMonitor,
    MonitorConfig,
    PageHinkley,
    StreamingConfusion,
    bucket_label,
    compare,
    decision_monitor,
    ks_statistic,
    monitor_record,
    monitor_snapshot,
    population_stability_index,
    quality_path,
    quality_report,
    replay,
    set_monitor_enabled,
    slices_from_meta,
    validate,
    write_quality_report,
)
from repro.obs.monitor import main as monitor_main


def decision_record(
    accepted=True,
    reason="accepted",
    liveness_score=0.9,
    facing_probability=0.8,
    truth=None,
    slices=None,
):
    """A synthetic pipeline decision audit record."""
    record = {
        "accepted": accepted,
        "reason": reason,
        "liveness_score": liveness_score,
        "facing_probability": facing_probability,
        "liveness_ms": 1.0,
        "orientation_ms": 2.0,
    }
    if truth is not None:
        record["truth"] = truth
    if slices is not None:
        record["slices"] = slices
    return record


def stream_records(seed, n=1500, shift_sigma=0.0, shift_at=400):
    """Seeded accepted-decision stream; optional sustained mean shift.

    The facing stream has σ = 0.05 and the liveness stream σ = 0.01, so
    ``shift_sigma`` scales each stream's own standard deviation.
    """
    rng = random.Random(seed)
    records = []
    for i in range(n):
        facing_shift = shift_sigma * 0.05 if i >= shift_at else 0.0
        liveness_shift = shift_sigma * 0.01 if i >= shift_at else 0.0
        records.append(
            decision_record(
                liveness_score=0.9 + liveness_shift + rng.gauss(0, 0.01),
                facing_probability=0.7 + facing_shift + rng.gauss(0, 0.05),
            )
        )
    return records


class TestBucketing:
    def test_bucket_labels(self):
        edges = (45.0, 90.0, 135.0)
        assert bucket_label(10, edges) == "<45"
        assert bucket_label(45, edges) == "45-90"
        assert bucket_label(100.5, edges) == "90-135"
        assert bucket_label(135, edges) == ">=135"
        assert bucket_label(2.5, (2.0, 4.0)) == "2-4"

    def test_slices_from_meta(self):
        meta = {
            "angle_deg": -100.0,  # bucketed by magnitude
            "distance_m": 3.0,
            "device": "D2",
            "loudness_db": 60.0,
        }
        slices = slices_from_meta(meta, config=MonitorConfig())
        assert slices == {"angle": "90-135", "distance": "2-4", "device": "D2"}

    def test_snr_slice_needs_ambient(self):
        meta = {"loudness_db": 60.0}
        assert slices_from_meta(meta, config=MonitorConfig()) == {}
        with_snr = slices_from_meta(meta, ambient_db_spl=50.0, config=MonitorConfig())
        assert with_snr == {"snr": "5-15"}

    def test_accepts_attribute_objects(self):
        class Meta:
            angle_deg = 0.0
            device = "D1"

        slices = slices_from_meta(Meta(), config=MonitorConfig())
        assert slices == {"angle": "<45", "device": "D1"}


class TestEnvOverrides:
    @pytest.fixture(autouse=True)
    def fresh_warnings(self):
        obs_control._WARNED.clear()
        yield
        obs_control._WARNED.clear()

    def test_valid_override_applied(self, monkeypatch):
        monkeypatch.setenv("REPRO_MONITOR_PSI", "0.5")
        monkeypatch.setenv("REPRO_MONITOR_ANGLE_EDGES", "30,60")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            config = MonitorConfig.from_env()
        assert config.psi_threshold == 0.5
        assert config.angle_edges == (30.0, 60.0)

    def test_malformed_float_warns_once_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_MONITOR_PSI", "banana")
        with pytest.warns(RuntimeWarning, match="REPRO_MONITOR_PSI"):
            config = MonitorConfig.from_env()
        assert config.psi_threshold == MonitorConfig().psi_threshold
        # Second read: already warned, stays silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            MonitorConfig.from_env()

    def test_non_positive_threshold_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_MONITOR_KS", "-1.0")
        with pytest.warns(RuntimeWarning, match="REPRO_MONITOR_KS"):
            config = MonitorConfig.from_env()
        assert config.ks_coefficient == MonitorConfig().ks_coefficient

    def test_malformed_edges_warn_and_fall_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_MONITOR_ANGLE_EDGES", "90,45")  # not increasing
        with pytest.warns(RuntimeWarning, match="REPRO_MONITOR_ANGLE_EDGES"):
            config = MonitorConfig.from_env()
        assert config.angle_edges == MonitorConfig().angle_edges

    def test_small_window_override_shrinks_min_window(self, monkeypatch):
        # A window below the default minimum must pull min_window down
        # with it, or the PSI/KS tests would silently never run.
        monkeypatch.setenv("REPRO_MONITOR_WINDOW", "32")
        config = MonitorConfig.from_env()
        assert config.window == 32
        assert config.min_window == 32
        monkeypatch.delenv("REPRO_MONITOR_WINDOW")
        default = MonitorConfig.from_env()
        assert default.min_window == MonitorConfig().min_window


class TestStreamingConfusion:
    def test_far_frr_match_ml_metrics(self):
        rng = random.Random(7)
        truths = [rng.random() < 0.6 for _ in range(400)]
        accepts = [(t and rng.random() < 0.9) or rng.random() < 0.2 for t in truths]
        confusion = StreamingConfusion()
        for truth, accepted in zip(truths, accepts):
            confusion.update(truth, accepted)
        y_true = np.asarray(truths, dtype=int)
        y_pred = np.asarray(accepts, dtype=int)
        assert confusion.far == false_acceptance_rate(y_true, y_pred)
        assert confusion.frr == false_rejection_rate(y_true, y_pred)
        assert confusion.n == 400

    def test_empty_class_yields_zero(self):
        confusion = StreamingConfusion()
        confusion.update(True, True)
        assert confusion.far == 0.0  # no negatives seen
        assert confusion.frr == 0.0


class TestDriftDetectors:
    def test_psi_zero_on_identical_fractions(self):
        fractions = [0.1] * 10
        assert population_stability_index(fractions, fractions) == pytest.approx(0.0)

    def test_ks_statistic_bounds(self):
        same = list(range(100))
        assert ks_statistic(same, same) == pytest.approx(0.0)
        assert ks_statistic([0.0] * 50, [1.0] * 50) == pytest.approx(1.0)

    def test_page_hinkley_detects_both_directions(self):
        for shift, expected in ((0.5, "up"), (-0.5, "down")):
            detector = PageHinkley(delta=0.05, lamb=2.0, mean=0.0)
            directions = [detector.update(shift) for _ in range(20)]
            fired = [d for d in directions if d is not None]
            assert fired and fired[0] == expected

    def test_page_hinkley_resets_after_alarm(self):
        detector = PageHinkley(delta=0.05, lamb=1.0, mean=0.0)
        while detector.update(1.0) is None:
            pass
        assert detector.statistic == 0.0

    def test_stationary_stream_raises_no_alarms(self):
        for seed in (0, 1):
            monitor = DecisionMonitor(config=MonitorConfig())
            for record in stream_records(seed):
                monitor.consume(record)
            assert monitor.snapshot()["alarms"] == []

    def test_half_sigma_shift_trips_all_detectors(self):
        for seed in (0, 1):
            monitor = DecisionMonitor(config=MonitorConfig())
            for record in stream_records(seed, shift_sigma=0.5):
                monitor.consume(record)
            alarms = monitor.snapshot()["alarms"]
            facing = {a["detector"] for a in alarms if a["stream"] == "facing_probability"}
            assert {"psi", "ks", "page-hinkley"} <= facing
            # The shift is injected per-stream in its own σ, so the
            # untouched-magnitude liveness stream shifts too; no alarm
            # may predate the shift point (reference 200 + window 256).
            assert all(a["count"] > 400 for a in alarms)

    def test_rising_edge_alarms_do_not_repeat(self):
        monitor = DecisionMonitor(config=MonitorConfig())
        for record in stream_records(3, shift_sigma=2.0):
            monitor.consume(record)
        alarms = monitor.snapshot()["alarms"]
        psi_alarms = [
            a for a in alarms if a["stream"] == "facing_probability" and a["detector"] == "psi"
        ]
        # Statistic stays above threshold once the window is fully
        # shifted; the edge logic must still fire exactly once.
        assert len(psi_alarms) == 1

    def test_explicit_reference_freezes_stream(self):
        monitor = DecisionMonitor(config=MonitorConfig())
        rng = random.Random(5)
        monitor.set_reference("facing_probability", [0.7 + rng.gauss(0, 0.05) for _ in range(200)])
        snapshot = monitor.snapshot()["drift"]["facing_probability"]
        assert snapshot["reference_n"] == 200
        assert snapshot["reference_mean"] == pytest.approx(0.7, abs=0.02)


class TestCalibration:
    def test_ece_brier_match_ml_calibration(self):
        rng = random.Random(11)
        monitor = DecisionMonitor(config=MonitorConfig())
        pairs = []
        for _ in range(300):
            probability = min(max(rng.gauss(0.7, 0.15), 0.0), 1.0)
            truth = rng.random() < probability
            pairs.append((probability, 1 if truth else 0))
            monitor.consume(decision_record(facing_probability=probability, truth=truth))
        calibration = monitor.snapshot()["calibration"]
        probabilities = [p for p, _ in pairs]
        truths = [t for _, t in pairs]
        assert calibration["n"] == 300
        assert calibration["ece"] == float(
            expected_calibration_error(truths, probabilities, n_bins=10)
        )
        assert calibration["brier"] == float(brier_score(truths, probabilities))

    def test_rejected_stages_skip_calibration(self):
        monitor = DecisionMonitor(config=MonitorConfig())
        monitor.consume(decision_record(accepted=False, reason="no-speech", truth=False))
        assert monitor.snapshot()["calibration"] is None


class TestSlicedCounters:
    def test_slice_counters_and_stage_slice(self):
        monitor = DecisionMonitor(config=MonitorConfig())
        monitor.consume(decision_record(truth=True, slices={"angle": "<45", "device": "D2"}))
        monitor.consume(
            decision_record(
                accepted=False,
                reason="non-facing",
                facing_probability=0.1,
                truth=True,
                slices={"angle": ">=135", "device": "D2"},
            )
        )
        snapshot = monitor.snapshot()
        assert snapshot["overall"]["n"] == 2
        assert snapshot["overall"]["frr"] == 0.5
        assert snapshot["slices"]["device=D2"]["n"] == 2
        assert snapshot["slices"]["angle=<45"]["frr"] == 0.0
        assert snapshot["slices"]["angle=>=135"]["frr"] == 1.0
        assert snapshot["slices"]["stage=orientation"]["n"] == 2

    def test_unlabelled_records_keep_counts_only(self):
        monitor = DecisionMonitor(config=MonitorConfig())
        monitor.consume(decision_record())
        snapshot = monitor.snapshot()
        assert snapshot["decisions"] == 1
        assert snapshot["labelled"] == 0
        assert snapshot["overall"] is None
        assert snapshot["slices"] == {}
        assert snapshot["sources"] == {}

    def test_source_slices_surface_as_sources_section(self):
        monitor = DecisionMonitor(config=MonitorConfig())
        monitor.consume(
            decision_record(truth=True, slices={"source": "live-facing", "room": "lab"})
        )
        monitor.consume(
            decision_record(truth=False, slices={"source": "loudspeaker", "room": "lab"})
        )
        snapshot = monitor.snapshot()
        assert set(snapshot["sources"]) == {"live-facing", "loudspeaker"}
        # The section mirrors the underlying source=... slices exactly.
        for label, entry in snapshot["sources"].items():
            assert entry == snapshot["slices"][f"source={label}"]
        assert snapshot["sources"]["live-facing"]["frr"] == 0.0
        assert snapshot["sources"]["loudspeaker"]["far"] == 1.0  # accepted a fake


class TestGlobalFeed:
    def test_monitor_record_requires_obs(self):
        monitor_record(decision_record())
        assert monitor_snapshot() == {}

    def test_monitor_record_feeds_global_monitor(self):
        set_obs_enabled(True)
        monitor_record(decision_record(truth=True))
        snapshot = monitor_snapshot()
        assert snapshot["decisions"] == 1
        assert snapshot["overall"]["tp"] == 1

    def test_monitor_opt_out(self):
        set_obs_enabled(True)
        set_monitor_enabled(False)
        monitor_record(decision_record())
        assert monitor_snapshot() == {}

    def test_alarms_land_in_registry_and_audit_log(self):
        set_obs_enabled(True)
        for record in stream_records(0, shift_sigma=2.0):
            monitor_record(record)
        alarms = [r for r in audit_log().records() if r["event"] == "drift-alarm"]
        assert alarms
        assert {"stream", "detector", "statistic", "threshold"} <= set(alarms[0])
        snapshot = REGISTRY.snapshot()
        assert any(name.startswith("monitor.drift_alarms") for name in snapshot)
        assert any(name.startswith("monitor.decisions") for name in snapshot)


class FakeLiveness:
    def scores(self, waveforms, sample_rate):
        return np.full(len(waveforms), 0.9)


class FakeOrientation:
    def facing_probability(self, rows):
        return np.full(rows.shape[0], 0.8)


@pytest.fixture
def fake_pipeline(d2_subset):
    return HeadTalkPipeline(
        array=d2_subset,
        liveness=FakeLiveness(),
        orientation=FakeOrientation(),
        config=HeadTalkConfig(),
    )


@pytest.fixture
def noisy_capture(d2_subset):
    rng = np.random.default_rng(11)
    channels = rng.standard_normal((d2_subset.n_mics, d2_subset.sample_rate // 2))
    return Capture(channels=channels, sample_rate=d2_subset.sample_rate)


class TestPipelineIntegration:
    def test_truth_and_slices_ride_the_audit_record(self, fake_pipeline, noisy_capture):
        set_obs_enabled(True)
        fake_pipeline.evaluate(noisy_capture, truth=True, slices={"device": "D2"})
        (record,) = audit_log().records()
        assert record["truth"] is True
        assert record["slices"] == {"device": "D2"}
        snapshot = monitor_snapshot()
        assert snapshot["labelled"] == 1
        assert snapshot["slices"]["device=D2"]["n"] == 1

    def test_batch_labels_per_capture(self, fake_pipeline, noisy_capture):
        set_obs_enabled(True)
        fake_pipeline.evaluate_batch(
            [noisy_capture, noisy_capture],
            truths=[True, False],
            slices=[{"angle": "<45"}, {"angle": ">=135"}],
        )
        records = audit_log().records()
        assert [r["truth"] for r in records] == [True, False]
        snapshot = monitor_snapshot()
        assert snapshot["overall"]["n"] == 2
        assert snapshot["slices"]["angle=>=135"]["far"] == 1.0

    def test_batch_label_length_mismatch_rejected(self, fake_pipeline, noisy_capture):
        with pytest.raises(ValueError, match="truths"):
            fake_pipeline.evaluate_batch([noisy_capture], truths=[True, False])
        with pytest.raises(ValueError, match="slices"):
            fake_pipeline.evaluate_batch([noisy_capture], slices=[{}, {}])

    def test_disabled_pipeline_leaves_monitor_untouched(self, fake_pipeline, noisy_capture):
        fake_pipeline.evaluate(noisy_capture, truth=True, slices={"device": "D2"})
        assert monitor_snapshot() == {}
        assert decision_monitor().decisions == 0


class TestReplay:
    def test_replay_reconstructs_identical_state(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        live = DecisionMonitor(config=MonitorConfig())
        with open(path, "w", encoding="utf-8") as handle:
            for index, record in enumerate(stream_records(2, n=700, shift_sigma=1.0)):
                if index % 3 == 0:
                    record["truth"] = True
                    record["slices"] = {"device": "D2"}
                live.consume(record)
                handle.write(json.dumps({"event": "decision", "ts": 1.0, **record}) + "\n")
                # Interleaved non-decision events must be ignored.
                handle.write(json.dumps({"event": "gate", "kind": "uploaded"}) + "\n")
        replayed = replay(path, config=MonitorConfig())
        assert replayed.snapshot() == live.snapshot()

    def test_replay_of_live_audit_sink(self, fake_pipeline, noisy_capture, tmp_path):
        set_obs_enabled(True)
        path = tmp_path / "audit.jsonl"
        configure_audit(path=path)
        for truth in (True, True, False):
            fake_pipeline.evaluate(noisy_capture, truth=truth, slices={"device": "D2"})
        audit_log().flush()
        replayed = replay(path, config=MonitorConfig())
        assert replayed.snapshot() == decision_monitor().snapshot()
        assert replayed.snapshot()["overall"]["far"] == 1.0  # the False label accepted

    def test_replay_skips_corrupt_lines_with_one_warning(self, tmp_path):
        obs_control._WARNED.clear()
        records = stream_records(4, n=50)
        clean = tmp_path / "clean.jsonl"
        dirty = tmp_path / "dirty.jsonl"
        with open(clean, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps({"event": "decision", **record}) + "\n")
        with open(dirty, "w", encoding="utf-8") as handle:
            for index, record in enumerate(records):
                handle.write(json.dumps({"event": "decision", **record}) + "\n")
                if index == 10:
                    handle.write("\n")  # blank lines are not corruption
                    handle.write('{"event": "decision", "accepted": tru\n')  # killed writer
                    handle.write('["not", "an", "object"]\n')
        with pytest.warns(RuntimeWarning, match="skipped 2 corrupt audit line"):
            replayed = replay(dirty, config=MonitorConfig())
        assert replayed.snapshot() == replay(clean, config=MonitorConfig()).snapshot()
        # Replaying the same file again stays silent (warn-once per file).
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            replay(dirty, config=MonitorConfig())


class TestReports:
    def _snapshot(self):
        monitor = DecisionMonitor(config=MonitorConfig())
        monitor.consume(decision_record(truth=True, slices={"device": "D2"}))
        return monitor.snapshot()

    def test_write_and_validate(self, tmp_path):
        path = write_quality_report("unit", directory=tmp_path, snapshot=self._snapshot())
        assert path == quality_path("unit", tmp_path)
        document = json.loads(path.read_text())
        assert validate(document) == []
        assert document["schema"] == "repro.obs.monitor/1"
        assert document["overall"]["far"] == 0.0

    def test_validate_flags_problems(self):
        document = quality_report("unit", snapshot=self._snapshot())
        document["schema"] = "bogus/9"
        document["decisions"] = -1
        problems = validate(document)
        assert any("schema" in p for p in problems)
        assert any("decisions" in p for p in problems)
        assert validate([]) == ["document is not a JSON object"]

    def test_validate_flags_bad_sources_section(self):
        document = quality_report("unit", snapshot=self._snapshot())
        document["sources"] = {"loudspeaker": {"far": "high"}}
        problems = validate(document)
        assert any("sources.loudspeaker.far" in p for p in problems)
        assert any("sources.loudspeaker.frr" in p for p in problems)
        document["sources"] = {"noise": []}
        assert any("sources['noise']" in p for p in validate(document))
        document["sources"] = "everything"
        assert any(p == "sources must be an object" for p in validate(document))


class TestCompare:
    def _report(self, far=0.1, frr=0.2, ece=0.05):
        snapshot = DecisionMonitor(config=MonitorConfig()).snapshot()
        snapshot["overall"] = {"far": far, "frr": frr}
        snapshot["calibration"] = {"ece": ece, "brier": 0.1, "n": 10}
        return quality_report("unit", snapshot=snapshot)

    def test_identical_reports_pass(self):
        report = self._report()
        assert compare(report, report).ok

    def test_regression_beyond_tolerance_fails(self):
        comparison = compare(self._report(far=0.1), self._report(far=0.25), 10.0)
        assert not comparison.ok
        assert [row.metric for row in comparison.failures] == ["overall.far"]
        assert "FAIL" in comparison.render()

    def test_regression_within_tolerance_passes(self):
        assert compare(self._report(far=0.1), self._report(far=0.15), 10.0).ok

    def test_missing_gated_metric_fails(self):
        current = self._report()
        current["calibration"] = None
        comparison = compare(self._report(), current)
        assert [row.metric for row in comparison.failures] == ["calibration.ece"]

    def test_missing_baseline_metric_is_informational(self):
        baseline = self._report()
        baseline["overall"] = None
        assert compare(baseline, self._report()).ok

    def _with_sources(self, loudspeaker_far=0.0):
        report = self._report()
        report["sources"] = {
            "live-facing": {"n": 10, "far": 0.0, "frr": 0.1},
            "loudspeaker": {"n": 10, "far": loudspeaker_far, "frr": 0.0},
        }
        return report

    def test_baseline_sources_are_gated_dynamically(self):
        baseline = self._with_sources(loudspeaker_far=0.05)
        comparison = compare(baseline, self._with_sources(loudspeaker_far=0.30), 10.0)
        assert [row.metric for row in comparison.failures] == [
            "sources.loudspeaker.far"
        ]
        gated = {row.metric for row in comparison.rows}
        assert "sources.live-facing.frr" in gated

    def test_source_missing_from_current_report_fails(self):
        current = self._with_sources()
        current["sources"] = {"live-facing": current["sources"]["live-facing"]}
        comparison = compare(self._with_sources(), current)
        assert not comparison.ok
        assert {row.metric for row in comparison.failures} == {
            "sources.loudspeaker.far",
            "sources.loudspeaker.frr",
        }

    def test_sources_absent_from_baseline_are_not_gated(self):
        # An old baseline (no sources section) must keep gating cleanly.
        assert compare(self._report(), self._with_sources()).ok


class TestCli:
    def _audit_file(self, tmp_path, shift_sigma=0.0):
        path = tmp_path / "audit.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            for record in stream_records(4, n=600, shift_sigma=shift_sigma):
                record["truth"] = True
                handle.write(json.dumps({"event": "decision", **record}) + "\n")
        return path

    def test_replay_writes_report(self, tmp_path, capsys):
        audit = self._audit_file(tmp_path)
        assert monitor_main(["replay", str(audit), "--name", "t", "--out", str(tmp_path)]) == 0
        report = json.loads((tmp_path / "QUALITY_t.json").read_text())
        assert validate(report) == []
        assert report["decisions"] == 600
        assert "replayed 600 decisions" in capsys.readouterr().out

    def test_replay_default_name_is_audit_stem(self, tmp_path):
        audit = self._audit_file(tmp_path)
        assert monitor_main(["replay", str(audit), "--out", str(tmp_path)]) == 0
        assert (tmp_path / "QUALITY_audit.json").exists()

    def test_replay_fail_on_alarms(self, tmp_path):
        audit = self._audit_file(tmp_path, shift_sigma=2.0)
        argv = ["replay", str(audit), "--name", "t", "--out", str(tmp_path)]
        assert monitor_main(argv) == 0
        assert monitor_main(argv + ["--fail-on-alarms"]) == 1

    def test_replay_missing_audit_is_usage_error(self, tmp_path):
        assert monitor_main(["replay", str(tmp_path / "nope.jsonl")]) == 2

    def test_compare_gates(self, tmp_path):
        audit = self._audit_file(tmp_path)
        monitor_main(["replay", str(audit), "--name", "base", "--out", str(tmp_path)])
        base = tmp_path / "QUALITY_base.json"
        assert monitor_main(["compare", str(base), str(base), "--max-regress", "0"]) == 0
        regressed = json.loads(base.read_text())
        regressed["overall"]["frr"] += 0.5
        bad = tmp_path / "QUALITY_bad.json"
        bad.write_text(json.dumps(regressed))
        assert monitor_main(["compare", str(base), str(bad), "--max-regress", "10"]) == 1
        assert monitor_main(["compare", str(base), str(tmp_path / "missing.json")]) == 2

    def test_validate_command(self, tmp_path):
        audit = self._audit_file(tmp_path)
        monitor_main(["replay", str(audit), "--name", "v", "--out", str(tmp_path)])
        report = tmp_path / "QUALITY_v.json"
        assert monitor_main(["validate", str(report)]) == 0
        broken = json.loads(report.read_text())
        broken["schema"] = "nope"
        report.write_text(json.dumps(broken))
        assert monitor_main(["validate", str(report)]) == 1
        assert monitor_main(["validate", str(tmp_path / "absent.json")]) == 2


class TestMislabeledReplayGuard:
    """``attack-*`` slice labels require the attack layer to be armed."""

    def test_attack_label_with_layer_disarmed_warns_once(self, monkeypatch):
        from repro.attacks import attacks_enabled

        monkeypatch.setattr(obs_control, "_WARNED", set())
        assert not attacks_enabled()
        monitor = DecisionMonitor(config=MonitorConfig())
        record = lambda: decision_record(truth=False, slices={"source": "attack-eq"})
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            monitor.consume(record())
            monitor.consume(record())
        runtime = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert len(runtime) == 1
        assert "attack-eq" in str(runtime[0].message)

    def test_attack_label_with_layer_armed_is_silent(self, monkeypatch):
        from repro.attacks import set_attacks_enabled

        monkeypatch.setattr(obs_control, "_WARNED", set())
        set_attacks_enabled(True)
        try:
            monitor = DecisionMonitor(config=MonitorConfig())
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                monitor.consume(
                    decision_record(truth=False, slices={"source": "attack-tdoa"})
                )
        finally:
            set_attacks_enabled(False)
        assert not [w for w in caught if issubclass(w.category, RuntimeWarning)]

    def test_ordinary_labels_never_touch_the_guard(self, monkeypatch):
        monkeypatch.setattr(obs_control, "_WARNED", set())
        monitor = DecisionMonitor(config=MonitorConfig())
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            monitor.consume(decision_record(truth=False, slices={"source": "replay"}))
        assert not [w for w in caught if issubclass(w.category, RuntimeWarning)]
