"""Metrics: counters, gauges, labelled identity, histogram percentiles."""

import json
import math
import threading
import warnings

import numpy as np
import pytest

from repro.obs import (
    REGISTRY,
    counter_inc,
    gauge_set,
    histogram_observe,
    set_obs_enabled,
    snapshot_to_prometheus,
)
from repro.obs import control as obs_control
from repro.obs import metrics as obs_metrics
from repro.obs import windowed_inc
from repro.obs.metrics import Counter, Gauge, Histogram, WindowedCounter, metric_id


class TestCounter:
    def test_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_last_set_wins(self):
        gauge = Gauge()
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5


class TestRegistry:
    def test_get_or_create_is_stable(self):
        first = REGISTRY.counter("hits", cache="rir")
        second = REGISTRY.counter("hits", cache="rir")
        assert first is second

    def test_labels_distinguish_metrics(self):
        REGISTRY.counter("hits", cache="rir").inc()
        REGISTRY.counter("hits", cache="dry").inc(2)
        snapshot = REGISTRY.snapshot()
        assert snapshot["hits{cache=rir}"]["value"] == 1
        assert snapshot["hits{cache=dry}"]["value"] == 2

    def test_kind_conflict_raises(self):
        REGISTRY.counter("mixed")
        with pytest.raises(TypeError, match="already registered"):
            REGISTRY.gauge("mixed")

    def test_metric_id_format(self):
        assert metric_id("plain", ()) == "plain"
        assert metric_id("n", (("a", "1"), ("b", "2"))) == "n{a=1,b=2}"

    def test_snapshot_is_json_serializable(self):
        REGISTRY.counter("c").inc()
        REGISTRY.gauge("g").set(2)
        REGISTRY.histogram("h").observe(1.0)
        json.dumps(REGISTRY.snapshot())


class TestHistogram:
    def test_percentiles_track_numpy_quantiles(self):
        """Interpolated percentiles are exact to within one bucket width.

        Unit-width buckets over a 5000-sample uniform draw: the
        histogram estimate must sit within ~1.5 of numpy's exact
        quantile for every percentile the summaries report.
        """
        rng = np.random.default_rng(7)
        values = rng.uniform(0.0, 100.0, size=5000)
        histogram = Histogram(bounds=tuple(float(b) for b in range(1, 101)))
        for value in values:
            histogram.observe(value)
        for p in (1, 5, 25, 50, 75, 95, 99):
            exact = float(np.percentile(values, p))
            assert histogram.percentile(p) == pytest.approx(exact, abs=1.5)

    def test_percentiles_clamped_to_observed_range(self):
        histogram = Histogram(bounds=(10.0, 100.0))
        histogram.observe(42.0)
        histogram.observe(43.0)
        assert 42.0 <= histogram.percentile(0) <= 43.0
        assert 42.0 <= histogram.percentile(100) <= 43.0

    def test_empty_histogram(self):
        histogram = Histogram()
        assert math.isnan(histogram.percentile(50))
        assert math.isnan(histogram.mean)
        summary = histogram.summary()
        assert summary["count"] == 0
        assert summary["p50"] is None

    def test_overflow_bucket(self):
        histogram = Histogram(bounds=(1.0,))
        histogram.observe(5.0)
        assert histogram.counts == [0, 1]
        assert histogram.percentile(50) == 5.0

    def test_summary_is_json_serializable(self):
        histogram = Histogram()
        for value in (0.2, 3.0, 40.0):
            histogram.observe(value)
        summary = histogram.summary()
        json.dumps(summary)
        assert summary["count"] == 3
        assert summary["min"] == 0.2 and summary["max"] == 40.0

    def test_duplicate_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))


class FakeClock:
    """Deterministic monotonic clock for windowed-counter tests."""

    def __init__(self, t: float = 1000.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestWindowedCounter:
    def test_total_is_monotonic_and_rates_decay(self):
        clock = FakeClock()
        counter = WindowedCounter(windows=(10.0, 60.0), clock=clock)
        for _ in range(5):
            counter.inc(2)
            clock.advance(1.0)
        assert counter.value == 10.0
        assert counter.count(10.0) == 10.0
        clock.advance(20.0)
        assert counter.count(10.0) == 0.0
        assert counter.count(60.0) == 10.0
        assert counter.value == 10.0  # total never decays

    def test_rate_is_count_over_window(self):
        clock = FakeClock()
        counter = WindowedCounter(windows=(10.0,), clock=clock)
        for _ in range(30):
            counter.inc()
            clock.advance(0.1)
        assert counter.rate(10.0) == pytest.approx(3.0)

    def test_buckets_prune_past_longest_window(self):
        clock = FakeClock()
        counter = WindowedCounter(windows=(5.0, 30.0), clock=clock)
        for _ in range(120):
            counter.inc()
            clock.advance(1.0)
        assert len(counter._buckets) <= 31
        assert counter.value == 120.0

    def test_snapshot_shape_and_prometheus(self):
        clock = FakeClock()
        counter = WindowedCounter(windows=(10.0, 60.0), clock=clock)
        counter.inc(4)
        snapshot = counter.snapshot()
        assert snapshot["type"] == "windowed"
        assert snapshot["value"] == 4.0
        assert set(snapshot["rates"]) == {"10s", "60s"}
        json.dumps(snapshot)
        text = snapshot_to_prometheus({"serving.rps": snapshot})
        assert "# TYPE serving_rps_total counter" in text
        assert "serving_rps_total 4" in text
        assert "# TYPE serving_rps_rate gauge" in text
        assert 'serving_rps_rate{window="10s"} 0.4' in text

    def test_guarded_helper_and_registry(self):
        windowed_inc("never")
        assert REGISTRY.snapshot() == {}
        set_obs_enabled(True)
        windowed_inc("serving.rps", amount=3)
        assert REGISTRY.windowed("serving.rps").value == 3.0
        assert REGISTRY.snapshot()["serving.rps"]["type"] == "windowed"

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            WindowedCounter(windows=())
        with pytest.raises(ValueError):
            WindowedCounter(windows=(0.0,))
        with pytest.raises(ValueError):
            WindowedCounter().inc(-1)


class TestLabelSanitization:
    """Satellite 1: id-breaking label values are rewritten, with one warning."""

    @pytest.fixture(autouse=True)
    def fresh_warnings(self, monkeypatch):
        monkeypatch.setattr(obs_control, "_WARNED", set())

    def test_unsafe_value_is_sanitized_and_round_trips(self):
        set_obs_enabled(True)
        with pytest.warns(RuntimeWarning, match="unsafe"):
            counter_inc("gate.decisions", reason="bad,value}x=1")
        assert list(REGISTRY.snapshot()) == ["gate.decisions{reason=bad_value_x_1}"]
        # The sanitized id survives the Prometheus round trip unharmed.
        text = REGISTRY.to_prometheus()
        assert 'gate_decisions_total{reason="bad_value_x_1"} 1' in text

    def test_warning_fires_once_per_metric_label(self):
        set_obs_enabled(True)
        with pytest.warns(RuntimeWarning):
            counter_inc("m", k="a,b")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            counter_inc("m", k="a,b")  # same pair: silent
        with pytest.warns(RuntimeWarning):
            counter_inc("m2", k="a,b")  # new metric: warns again

    def test_sanitized_values_collide_into_one_metric(self):
        set_obs_enabled(True)
        with pytest.warns(RuntimeWarning):
            counter_inc("m", k="a,b")
            counter_inc("m", k="a}b")
        assert REGISTRY.counter("m", k="a_b").value == 2.0

    def test_safe_values_untouched(self):
        set_obs_enabled(True)
        counter_inc("m", k="plain-value.ok")
        assert "m{k=plain-value.ok}" in REGISTRY.snapshot()


class TestGuardedHelpers:
    def test_disabled_helpers_touch_nothing(self):
        counter_inc("never")
        gauge_set("never", 1.0)
        histogram_observe("never", 1.0)
        assert REGISTRY.snapshot() == {}

    def test_enabled_helpers_record(self):
        set_obs_enabled(True)
        counter_inc("c", amount=2, mode="x")
        gauge_set("g", 7)
        histogram_observe("h", 1.5)
        snapshot = REGISTRY.snapshot()
        assert snapshot["c{mode=x}"]["value"] == 2
        assert snapshot["g"]["value"] == 7
        assert snapshot["h"]["count"] == 1


class TestThreadSafety:
    """No lost updates under concurrent instrumentation (satellite 4)."""

    def test_concurrent_counter_increments(self):
        set_obs_enabled(True)
        threads_n, increments = 8, 2000

        def hammer():
            for _ in range(increments):
                counter_inc("stress.hits", cache="rir")

        threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert REGISTRY.counter("stress.hits", cache="rir").value == threads_n * increments

    def test_concurrent_get_or_create_and_observe(self):
        """Racing first-use creation must yield one metric per identity."""
        set_obs_enabled(True)
        barrier = threading.Barrier(6)
        seen = []

        def hammer(k):
            barrier.wait()
            for i in range(500):
                histogram_observe("stress.ms", float(i % 7), worker=str(k % 2))
            seen.append(REGISTRY.histogram("stress.ms", worker=str(k % 2)))

        threads = [threading.Thread(target=hammer, args=(k,)) for k in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        summaries = REGISTRY.histograms("stress.ms")
        assert set(summaries) == {"stress.ms{worker=0}", "stress.ms{worker=1}"}
        assert sum(s["count"] for s in summaries.values()) == 6 * 500
        # Each label set resolved to exactly one histogram instance.
        assert len({id(h) for h in seen}) == 2


class TestPrometheusExposition:
    def test_counter_gauge_and_sanitization(self):
        set_obs_enabled(True)
        counter_inc("runtime.cache.hits", amount=3, cache="rir")
        gauge_set("pool.size", 2)
        text = REGISTRY.to_prometheus()
        assert "# TYPE runtime_cache_hits_total counter" in text
        assert 'runtime_cache_hits_total{cache="rir"} 3' in text
        assert "# TYPE pool_size gauge" in text
        assert "pool_size 2" in text
        assert text.endswith("\n")

    def test_histogram_cumulative_buckets(self):
        snapshot = {
            "lat.ms{stage=fast}": {
                "type": "histogram",
                "bounds": [1.0, 5.0],
                "counts": [2, 1, 1],
                "count": 4,
                "sum": 10.5,
            }
        }
        text = snapshot_to_prometheus(snapshot)
        assert "# TYPE lat_ms histogram" in text
        assert 'lat_ms_bucket{stage="fast",le="1"} 2' in text
        assert 'lat_ms_bucket{stage="fast",le="5"} 3' in text
        assert 'lat_ms_bucket{stage="fast",le="+Inf"} 4' in text
        assert 'lat_ms_sum{stage="fast"} 10.5' in text
        assert 'lat_ms_count{stage="fast"} 4' in text

    def test_empty_snapshot_renders_empty(self):
        assert snapshot_to_prometheus({}) == ""

    def test_main_dumps_live_registry(self, capsys):
        set_obs_enabled(True)
        counter_inc("dump.me")
        assert obs_metrics.main([]) == 0
        out = capsys.readouterr().out
        assert "dump_me_total 1" in out

    def test_main_converts_snapshot_file(self, tmp_path, capsys):
        set_obs_enabled(True)
        counter_inc("saved.counter", amount=4)
        path = tmp_path / "snapshot.json"
        path.write_text(json.dumps(REGISTRY.snapshot()))
        REGISTRY.reset()
        assert obs_metrics.main([str(path)]) == 0
        assert "saved_counter_total 4" in capsys.readouterr().out

    def test_main_rejects_bad_input(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert obs_metrics.main([str(missing)]) == 1
        not_object = tmp_path / "list.json"
        not_object.write_text("[1, 2]")
        assert obs_metrics.main([str(not_object)]) == 1
        errors = capsys.readouterr().err
        assert "nope.json" in errors and "not a snapshot object" in errors
