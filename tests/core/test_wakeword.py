"""Tests for the DTW wake-word spotter."""

import numpy as np
import pytest

from repro.acoustics import synthesize_wake_word
from repro.core.wakeword import Detection, WakeWordSpotter, dtw_distance
from repro.datasets import speaker_profile

FS = 48_000


def tokens(word: str, n: int, seed: int = 0) -> list[np.ndarray]:
    profile = speaker_profile(0)
    rng = np.random.default_rng(seed)
    return [synthesize_wake_word(word, profile, FS, rng) for _ in range(n)]


class TestDtw:
    def test_identical_sequences_zero(self):
        a = np.random.default_rng(0).standard_normal((20, 4))
        assert dtw_distance(a, a) == pytest.approx(0.0, abs=1e-6)

    def test_symmetric(self):
        rng = np.random.default_rng(1)
        a, b = rng.standard_normal((15, 4)), rng.standard_normal((22, 4))
        assert dtw_distance(a, b) == pytest.approx(dtw_distance(b, a), rel=1e-9)

    def test_time_warp_invariance(self):
        """A time-stretched copy stays much closer than a different signal."""
        t = np.linspace(0, 1, 40)
        a = np.stack([np.sin(2 * np.pi * 2 * t), np.cos(2 * np.pi * 2 * t)], axis=1)
        stretched_t = np.linspace(0, 1, 60)
        b = np.stack(
            [np.sin(2 * np.pi * 2 * stretched_t), np.cos(2 * np.pi * 2 * stretched_t)],
            axis=1,
        )
        other = np.random.default_rng(2).standard_normal((40, 2))
        assert dtw_distance(a, b) < 0.3 * dtw_distance(a, other)

    def test_validation(self):
        with pytest.raises(ValueError):
            dtw_distance(np.zeros((3, 2)), np.zeros((3, 3)))
        with pytest.raises(ValueError):
            dtw_distance(np.zeros((0, 2)), np.zeros((3, 2)))


class TestSpotter:
    @pytest.fixture(scope="class")
    def spotter(self):
        spotter = WakeWordSpotter()
        spotter.enroll("computer", tokens("computer", 4, seed=0), FS)
        spotter.enroll("amazon", tokens("amazon", 4, seed=1), FS)
        return spotter

    def test_enrollment_requires_examples(self):
        with pytest.raises(ValueError, match="two example"):
            WakeWordSpotter().enroll("computer", tokens("computer", 1), FS)

    def test_detects_enrolled_word(self, spotter):
        fresh = tokens("computer", 1, seed=9)[0]
        detection = spotter.detect(fresh, FS)
        assert detection.detected
        assert detection.word == "computer"

    def test_distinguishes_words(self, spotter):
        fresh = tokens("amazon", 1, seed=9)[0]
        detection = spotter.detect(fresh, FS)
        assert detection.word in (None, "amazon")
        d_amazon = spotter.distance_to("amazon", fresh, FS)
        d_computer = spotter.distance_to("computer", fresh, FS)
        assert d_amazon < d_computer

    def test_rejects_noise(self, spotter):
        noise = 0.3 * np.random.default_rng(3).standard_normal(FS // 2)
        detection = spotter.detect(noise, FS)
        assert not detection.detected
        assert detection.word is None

    def test_unenrolled_word_lookup(self, spotter):
        with pytest.raises(KeyError):
            spotter.distance_to("jarvis", tokens("computer", 1)[0], FS)

    def test_detect_without_enrollment(self):
        with pytest.raises(RuntimeError, match="enrolled"):
            WakeWordSpotter().detect(np.zeros(1000), FS)

    def test_detection_record_fields(self, spotter):
        fresh = tokens("computer", 1, seed=10)[0]
        detection = spotter.detect(fresh, FS)
        assert isinstance(detection, Detection)
        assert detection.distance >= 0
        assert detection.threshold > 0
