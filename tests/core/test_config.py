"""Tests for facing definitions and system configuration."""

import pytest

from repro.core import (
    ALL_DEFINITIONS,
    BASELINE_DEFINITION,
    DEFAULT_DEFINITION,
    DEFINITION_1,
    DEFINITION_2,
    DEFINITION_3,
    DEFINITION_4,
    FACING,
    FacingDefinition,
    HeadTalkConfig,
    NON_FACING,
    ground_truth_label,
)


class TestGroundTruth:
    def test_facing_zone(self):
        for angle in (0.0, 15.0, -30.0, 30.0):
            assert ground_truth_label(angle) == FACING

    def test_non_facing(self):
        for angle in (45.0, -60.0, 90.0, 180.0, 135.0):
            assert ground_truth_label(angle) == NON_FACING

    def test_wrapping(self):
        assert ground_truth_label(360.0) == FACING
        assert ground_truth_label(-345.0) == FACING
        assert ground_truth_label(190.0) == NON_FACING


class TestDefinitions:
    def test_paper_arcs(self):
        assert DEFINITION_1.facing_angles == frozenset({0.0, 15.0, -15.0, 30.0, -30.0, 45.0, -45.0})
        assert DEFINITION_4.facing_angles == frozenset({0.0, 15.0, -15.0, 30.0, -30.0})
        assert DEFINITION_4.non_facing_angles == frozenset({90.0, -90.0, 135.0, -135.0, 180.0})

    def test_definition_4_excludes_borderline(self):
        for angle in (45.0, -45.0, 60.0, -60.0, 75.0, -75.0):
            assert DEFINITION_4.training_label(angle) is None

    def test_definition_1_includes_45(self):
        assert DEFINITION_1.training_label(45.0) == FACING

    def test_default_is_definition_4(self):
        assert DEFAULT_DEFINITION is DEFINITION_4

    def test_all_definitions_ordered(self):
        assert [d.name for d in ALL_DEFINITIONS] == [
            "Definition-1",
            "Definition-2",
            "Definition-3",
            "Definition-4",
        ]

    def test_progressively_narrower_non_facing(self):
        assert DEFINITION_2.non_facing_angles > DEFINITION_3.non_facing_angles
        assert DEFINITION_3.non_facing_angles > DEFINITION_4.non_facing_angles

    def test_baseline_matches_dov_arcs(self):
        assert BASELINE_DEFINITION.training_label(45.0) == FACING
        assert BASELINE_DEFINITION.training_label(15.0) is None

    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="both classes"):
            FacingDefinition(
                "bad", frozenset({0.0, 90.0}), frozenset({90.0, 180.0})
            )

    def test_empty_class_rejected(self):
        with pytest.raises(ValueError):
            FacingDefinition("bad", frozenset(), frozenset({180.0}))

    def test_training_label_wraps(self):
        assert DEFINITION_4.training_label(360.0) == FACING


class TestHeadTalkConfig:
    def test_defaults(self):
        config = HeadTalkConfig()
        assert config.device == "D2"
        assert config.definition is DEFINITION_4
        assert config.wake_word == "computer"

    def test_validation(self):
        with pytest.raises(ValueError):
            HeadTalkConfig(n_channels_orientation=1)
        with pytest.raises(ValueError):
            HeadTalkConfig(liveness_threshold=0.0)
        with pytest.raises(ValueError):
            HeadTalkConfig(facing_threshold=1.0)
        with pytest.raises(ValueError):
            HeadTalkConfig(session_seconds=0.0)
