"""Tests for operating-point selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.threshold import (
    OperatingPoint,
    threshold_at_eer,
    threshold_for_far,
    threshold_for_frr,
)


def scored_data(n=500, gap=1.5, seed=0):
    rng = np.random.default_rng(seed)
    scores = np.concatenate([rng.normal(0, 1, n), rng.normal(gap, 1, n)])
    y = np.array([0] * n + [1] * n)
    return y, scores


class TestFarBudget:
    def test_budget_respected(self):
        y, s = scored_data()
        point = threshold_for_far(y, s, max_far=0.05)
        assert point.far <= 0.05

    def test_tighter_budget_raises_threshold(self):
        y, s = scored_data()
        loose = threshold_for_far(y, s, max_far=0.2)
        tight = threshold_for_far(y, s, max_far=0.01)
        assert tight.threshold > loose.threshold
        assert tight.frr >= loose.frr

    def test_zero_budget_achievable(self):
        y, s = scored_data(gap=8.0)
        point = threshold_for_far(y, s, max_far=0.0)
        assert point.far == 0.0
        assert point.frr < 0.05  # well-separated data keeps usability

    def test_validation(self):
        y, s = scored_data()
        with pytest.raises(ValueError):
            threshold_for_far(y, s, max_far=1.5)
        with pytest.raises(ValueError):
            threshold_for_far(np.ones(4), np.zeros(4), 0.1)


class TestFrrBudget:
    def test_budget_respected(self):
        y, s = scored_data()
        point = threshold_for_frr(y, s, max_frr=0.05)
        assert point.frr <= 0.05

    def test_maximizes_privacy_within_budget(self):
        y, s = scored_data()
        point = threshold_for_frr(y, s, max_frr=0.1)
        stricter = point.threshold + 0.25
        accepted = s >= stricter
        frr_above = float(np.mean(~accepted[y == 1]))
        assert frr_above > 0.1  # any stricter threshold busts the budget


class TestEerPoint:
    def test_far_frr_balanced(self):
        y, s = scored_data(n=2000)
        point = threshold_at_eer(y, s)
        assert abs(point.far - point.frr) < 0.02
        assert point.policy == "EER"

    @given(st.integers(0, 2000))
    @settings(max_examples=20, deadline=None)
    def test_rates_always_valid(self, seed):
        y, s = scored_data(n=80, seed=seed)
        for point in (
            threshold_for_far(y, s, 0.1),
            threshold_for_frr(y, s, 0.1),
            threshold_at_eer(y, s),
        ):
            assert isinstance(point, OperatingPoint)
            assert 0.0 <= point.far <= 1.0
            assert 0.0 <= point.frr <= 1.0
