"""Tests for the always-on assistant (spotter + controller)."""

import numpy as np
import pytest

from repro.acoustics import Capture
from repro.core import (
    AlwaysOnAssistant,
    ENTER_HEADTALK,
    EventKind,
    Mode,
    WakeWordSpotter,
)
from repro.core.pipeline import Decision

FS = 48_000


class StubPipeline:
    """Scripted pipeline (the real one is exercised in test_pipeline)."""

    def __init__(self, accept: bool):
        self.accept = accept

        class _Config:
            session_seconds = 60.0

        self.config = _Config()

    def evaluate(self, capture):
        return Decision(
            accepted=self.accept,
            reason="accepted" if self.accept else "non-facing",
            liveness_score=0.9,
            facing_probability=0.9 if self.accept else 0.1,
            liveness_ms=1.0,
            orientation_ms=1.0,
        )


class StubSpotter(WakeWordSpotter):
    """Spotting decided by a per-call script."""

    def __init__(self, hits):
        super().__init__()
        self.hits = list(hits)

    def detect(self, audio, sample_rate):
        from repro.core.wakeword import Detection

        hit = self.hits.pop(0)
        return Detection(detected=hit, word="computer" if hit else None, distance=0.1, threshold=0.5)


def capture():
    return Capture(channels=np.zeros((4, 4800)), sample_rate=FS)


class TestAlwaysOnAssistant:
    def test_background_speech_never_logged(self):
        assistant = AlwaysOnAssistant(
            pipeline=StubPipeline(True), spotter=StubSpotter([False, False])
        )
        outcome = assistant.hear(capture(), now=0.0)
        assert not outcome.spotted
        assert outcome.event is None
        assert not outcome.uploaded
        assert assistant.uploaded_count() == 0

    def test_wake_word_in_normal_mode_uploads(self):
        assistant = AlwaysOnAssistant(
            pipeline=StubPipeline(True), spotter=StubSpotter([True])
        )
        outcome = assistant.hear(capture(), now=0.0)
        assert outcome.spotted
        assert outcome.uploaded

    def test_headtalk_mode_gates_wake_word(self):
        assistant = AlwaysOnAssistant(
            pipeline=StubPipeline(False), spotter=StubSpotter([True])
        )
        assistant.controller.voice_command(ENTER_HEADTALK, now=0.0)
        outcome = assistant.hear(capture(), now=1.0)
        assert outcome.spotted
        assert outcome.event.kind is EventKind.SOFT_MUTED
        assert not outcome.uploaded

    def test_mute_mode_skips_spotting_entirely(self):
        assistant = AlwaysOnAssistant(
            pipeline=StubPipeline(True), spotter=StubSpotter([])
        )
        assistant.controller.press_mute_button(now=0.0)
        outcome = assistant.hear(capture(), now=1.0)
        assert not outcome.spotted
        assert outcome.event.kind is EventKind.HARD_MUTED
        # The scripted spotter was never consulted (hits list untouched).
        assert assistant.spotter.hits == []

    def test_mode_property(self):
        assistant = AlwaysOnAssistant(
            pipeline=StubPipeline(True), spotter=StubSpotter([])
        )
        assert assistant.mode is Mode.NORMAL


class TestHearStream:
    def make_stream(self, n_bursts=2):
        rng = np.random.default_rng(0)
        quiet = 0.002 * rng.standard_normal((4, FS // 2))
        pieces = [quiet]
        for _ in range(n_bursts):
            burst = rng.standard_normal((4, FS // 2))
            pieces.extend([burst, quiet])
        return np.concatenate(pieces, axis=1)

    def test_each_segment_processed(self):
        assistant = AlwaysOnAssistant(
            pipeline=StubPipeline(True), spotter=StubSpotter([True, True])
        )
        outcomes = assistant.hear_stream(self.make_stream(2), FS)
        assert len(outcomes) == 2
        assert all(outcome.spotted for outcome in outcomes)

    def test_timeline_offsets(self):
        assistant = AlwaysOnAssistant(
            pipeline=StubPipeline(True), spotter=StubSpotter([True, True])
        )
        assistant.hear_stream(self.make_stream(2), FS, start_time=100.0)
        upload_times = [
            event.time
            for event in assistant.controller.audit_log
            if event.kind is EventKind.UPLOADED
        ]
        # First burst ~0.5 s in; second ~1.5 s in; both offset by 100.
        assert upload_times[0] == pytest.approx(100.5, abs=0.3)

    def test_quiet_stream_yields_nothing(self):
        assistant = AlwaysOnAssistant(
            pipeline=StubPipeline(True), spotter=StubSpotter([])
        )
        quiet = 0.002 * np.random.default_rng(1).standard_normal((4, FS))
        assert assistant.hear_stream(quiet, FS) == []
