"""Tests for the preprocessing front-end."""

import numpy as np
import pytest

from repro.acoustics import Capture
from repro.core import preprocess

FS = 48_000


def capture_with_silence(seed=0):
    rng = np.random.default_rng(seed)
    lead = 0.0005 * rng.standard_normal((2, FS // 4))
    burst = rng.standard_normal((2, FS // 4))
    tail = 0.0005 * rng.standard_normal((2, FS // 4))
    return Capture(channels=np.concatenate([lead, burst, tail], axis=1), sample_rate=FS)


class TestPreprocess:
    def test_trims_to_speech(self, forward_capture):
        audio = preprocess(forward_capture)
        assert audio.had_speech
        assert audio.channels.shape[1] < forward_capture.n_samples

    def test_normalized_peak(self, forward_capture):
        audio = preprocess(forward_capture)
        assert np.abs(audio.channels).max() == pytest.approx(1.0)

    def test_channel_count_preserved(self, forward_capture):
        audio = preprocess(forward_capture)
        assert audio.channels.shape[0] == forward_capture.n_mics

    def test_silence_flagged(self):
        silent = Capture(channels=np.zeros((2, FS // 4)), sample_rate=FS)
        audio = preprocess(silent)
        assert not audio.had_speech

    def test_removes_out_of_band_noise(self):
        t = np.arange(FS // 2) / FS
        hum = np.sin(2 * np.pi * 30.0 * t)  # below the 100 Hz edge
        speech_band = np.sin(2 * np.pi * 500.0 * t)
        capture = Capture(channels=np.stack([hum + speech_band] * 2), sample_rate=FS)
        audio = preprocess(capture, normalize=False)
        spectrum = np.abs(np.fft.rfft(audio.channels[0]))
        freqs = np.fft.rfftfreq(audio.channels.shape[1], 1 / FS)
        hum_power = spectrum[np.argmin(np.abs(freqs - 30.0))]
        speech_power = spectrum[np.argmin(np.abs(freqs - 500.0))]
        assert speech_power > 20 * hum_power

    def test_trim_applies_same_cut_to_all_channels(self):
        capture = capture_with_silence()
        audio = preprocess(capture, normalize=False)
        # Burst region is the middle quarter second.
        assert audio.channels.shape[1] == pytest.approx(FS // 4, rel=0.25)

    def test_reference_is_first_channel(self, forward_capture):
        audio = preprocess(forward_capture)
        assert np.array_equal(audio.reference, audio.channels[0])

    def test_normalize_off(self):
        capture = capture_with_silence()
        audio = preprocess(capture, normalize=False)
        assert np.abs(audio.channels).max() != pytest.approx(1.0)
