"""float32 vs float64 decision-path parity (REPRO_DTYPE tentpole).

The default ``float64`` path must stay byte-for-byte what it always was
(fingerprints are exact tuples), while the opt-in ``float32`` path must
agree with it to single-precision tolerance — close enough that gate
verdicts match on well-separated captures.
"""

import numpy as np
import pytest

from repro.arrays import get_device
from repro.core import HeadTalkPipeline, OrientationFeatureExtractor
from repro.core.liveness import LivenessDetector
from repro.core.preprocessing import DenoisedAudio
from repro.dsp import decision_dtype, precision

# Looser than machine-eps because GCC whitening divides by small cross-
# power magnitudes; empirically parity holds far below these bounds.
RTOL = 5e-3
ATOL = 5e-4


def _synthetic_audio(device_name: str, seed: int = 0) -> DenoisedAudio:
    array = get_device(device_name)
    rng = np.random.default_rng(seed)
    base = rng.standard_normal(4_900)
    # correlated channels (shifted copies + small noise) so GCC has
    # structure rather than pure-noise peaks
    channels = np.stack(
        [
            np.roll(base, shift) + 0.01 * rng.standard_normal(base.size)
            for shift in range(array.n_mics)
        ]
    )
    return DenoisedAudio(
        channels=channels[:, :4_800],
        sample_rate=array.sample_rate,
        had_speech=True,
    )


class TestFeatureParity:
    @pytest.mark.parametrize("device_name", ["D1", "D2", "D3"])
    def test_float32_features_track_float64(self, device_name):
        audio = _synthetic_audio(device_name)
        extractor = OrientationFeatureExtractor(get_device(device_name))
        reference = extractor.extract(audio)
        assert reference.dtype == np.float64
        with precision("float32"):
            fast = extractor.extract(audio)
        assert fast.dtype == np.float32
        assert fast.shape == reference.shape
        np.testing.assert_allclose(fast, reference, rtol=RTOL, atol=ATOL)

    @pytest.mark.parametrize("device_name", ["D1", "D2", "D3"])
    def test_float32_batch_matches_serial_float32(self, device_name):
        """Batched and one-at-a-time float32 extraction agree to a few
        ulps (scipy's stacked FFT uses different SIMD accumulation than
        its single-signal path, so bit-equality holds only on the
        float64 default — asserted by the runtime equivalence suite)."""
        audios = [_synthetic_audio(device_name, seed=s) for s in (0, 1)]
        extractor = OrientationFeatureExtractor(get_device(device_name))
        with precision("float32"):
            batch = extractor.extract_batch(audios)
            serial = np.stack([extractor.extract(a) for a in audios])
        assert batch.dtype == np.float32
        np.testing.assert_allclose(batch, serial, rtol=1e-3, atol=1e-5)


class TestDecisionParity:
    @pytest.fixture()
    def pipeline(self, d2_subset, trained_detector):
        liveness = LivenessDetector(epochs=1, random_state=0)
        rng = np.random.default_rng(0)
        waveforms = [rng.standard_normal(24_000) for _ in range(4)]
        labels = np.array([0, 1, 0, 1])
        liveness.fit(waveforms, labels, 48_000)
        return HeadTalkPipeline(
            array=d2_subset, liveness=liveness, orientation=trained_detector
        )

    def test_float64_fingerprint_is_stable(self, pipeline, forward_capture):
        """Default-path decisions are exactly reproducible — the tuple
        compares equal bit-for-bit across repeated evaluations and an
        explicit ``precision("float64")`` scope."""
        first = pipeline.evaluate(forward_capture, check_liveness=False)
        second = pipeline.evaluate(forward_capture, check_liveness=False)
        assert first.fingerprint() == second.fingerprint()
        with precision("float64"):
            scoped = pipeline.evaluate(forward_capture, check_liveness=False)
        assert scoped.fingerprint() == first.fingerprint()

    def test_float32_verdicts_match_float64(
        self, pipeline, forward_capture, backward_capture
    ):
        for capture in (forward_capture, backward_capture):
            reference = pipeline.evaluate(capture, check_liveness=False)
            with precision("float32"):
                fast = pipeline.evaluate(capture, check_liveness=False)
            assert fast.accepted == reference.accepted
            assert fast.reason == reference.reason
            assert fast.facing_probability == pytest.approx(
                reference.facing_probability, rel=1e-2, abs=1e-3
            )

    def test_scope_restores_default(self):
        assert decision_dtype() == np.dtype(np.float64)
        with precision("float32"):
            assert decision_dtype() == np.dtype(np.float32)
        assert decision_dtype() == np.dtype(np.float64)
