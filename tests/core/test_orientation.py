"""Tests for the orientation detector wrapper."""

import numpy as np
import pytest

from repro.core import FACING, NON_FACING, OrientationDetector, make_backend
from repro.ml import (
    DecisionTreeClassifier,
    KNeighborsClassifier,
    RandomForestClassifier,
    SVC,
)


def feature_blobs(n=60, seed=0):
    rng = np.random.default_rng(seed)
    X = np.vstack([rng.normal(0, 1, (n, 8)), rng.normal(2.5, 1, (n, 8))])
    y = np.array([FACING] * n + [NON_FACING] * n)
    return X, y


class TestBackends:
    def test_factory_types(self):
        assert isinstance(make_backend("svm"), SVC)
        assert isinstance(make_backend("rf"), RandomForestClassifier)
        assert isinstance(make_backend("dt"), DecisionTreeClassifier)
        assert isinstance(make_backend("knn"), KNeighborsClassifier)

    def test_paper_hyperparameters(self):
        assert make_backend("rf").n_estimators == 200
        assert make_backend("dt").max_splits == 5
        assert make_backend("knn").n_neighbors == 3

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("xgboost")


class TestDetector:
    def test_fit_predict(self):
        X, y = feature_blobs()
        detector = OrientationDetector(backend="svm").fit(X, y)
        assert detector.score(X, y) > 0.95

    def test_facing_probability_range(self):
        X, y = feature_blobs()
        detector = OrientationDetector().fit(X, y)
        proba = detector.facing_probability(X)
        assert np.all((0 <= proba) & (proba <= 1))
        assert proba[y == FACING].mean() > proba[y == NON_FACING].mean()

    def test_is_facing_threshold(self):
        X, y = feature_blobs()
        detector = OrientationDetector().fit(X, y)
        facing_row = X[0]
        assert detector.is_facing(facing_row) in (True, False)
        # An impossible threshold always rejects.
        assert not detector.is_facing(facing_row, threshold=1.01)

    def test_scaling_is_internal(self):
        """Feature scales should not break the detector."""
        X, y = feature_blobs()
        X_scaled = X * np.array([1e6, 1e-6] + [1.0] * 6)
        detector = OrientationDetector().fit(X_scaled, y)
        assert detector.score(X_scaled, y) > 0.9

    def test_rejects_bad_labels(self):
        X, _ = feature_blobs()
        with pytest.raises(ValueError, match="labels"):
            OrientationDetector().fit(X, np.array(["yes"] * X.shape[0]))

    def test_rejects_single_class(self):
        X, _ = feature_blobs()
        with pytest.raises(ValueError, match="both classes"):
            OrientationDetector().fit(X, np.array([FACING] * X.shape[0]))

    def test_unfitted(self):
        with pytest.raises(RuntimeError, match="fitted"):
            OrientationDetector().predict(np.zeros((1, 4)))

    @pytest.mark.parametrize("backend", ["svm", "dt", "knn", "lr"])
    def test_all_backends_train(self, backend):
        X, y = feature_blobs(30)
        detector = OrientationDetector(backend=backend).fit(X, y)
        assert detector.score(X, y) > 0.8

    def test_lr_extension_backend(self):
        from repro.ml import LogisticRegression

        assert isinstance(make_backend("lr"), LogisticRegression)
