"""Tests for the liveness detector."""

import numpy as np
import pytest

from repro.core import LIVE_HUMAN, MECHANICAL, LivenessDetector, preprocess

FS = 48_000


@pytest.fixture(scope="module")
def trained_liveness(request):
    """A liveness detector trained on a tiny human/replay pool."""
    forward = request.getfixturevalue("forward_capture")
    replay = request.getfixturevalue("replay_capture")
    human_wave = preprocess(forward).reference
    replay_wave = preprocess(replay).reference
    rng = np.random.default_rng(0)
    waveforms, labels = [], []
    for _ in range(6):
        noise_h = human_wave + 0.02 * rng.standard_normal(human_wave.size)
        noise_r = replay_wave + 0.02 * rng.standard_normal(replay_wave.size)
        waveforms.extend([noise_h, noise_r])
        labels.extend([LIVE_HUMAN, MECHANICAL])
    detector = LivenessDetector(epochs=12, random_state=0)
    detector.fit(waveforms, np.asarray(labels), FS)
    return detector, human_wave, replay_wave


class TestFeaturization:
    def test_feature_shape(self):
        detector = LivenessDetector(n_bands=40)
        rng = np.random.default_rng(0)
        feats = detector.featurize(rng.standard_normal(FS // 2), FS)
        assert feats.shape[1] == 40

    def test_batch(self):
        detector = LivenessDetector()
        rng = np.random.default_rng(0)
        waves = [rng.standard_normal(FS // 4) for _ in range(3)]
        feats = detector.featurize_batch(waves, FS)
        assert len(feats) == 3


class TestClassification:
    def test_separates_training_pool(self, trained_liveness):
        detector, human_wave, replay_wave = trained_liveness
        scores = detector.scores([human_wave, replay_wave], FS)
        assert scores[0] > scores[1]

    def test_is_live(self, trained_liveness):
        detector, human_wave, replay_wave = trained_liveness
        assert detector.is_live(human_wave, FS) or not detector.is_live(replay_wave, FS)

    def test_predict_labels(self, trained_liveness):
        detector, human_wave, replay_wave = trained_liveness
        labels = detector.predict([human_wave, replay_wave], FS)
        assert set(labels.tolist()) <= {LIVE_HUMAN, MECHANICAL}

    def test_evaluate_eer_returns_pair(self, trained_liveness):
        detector, human_wave, replay_wave = trained_liveness
        accuracy, eer = detector.evaluate_eer(
            [human_wave, replay_wave, human_wave, replay_wave],
            np.array([1, 0, 1, 0]),
            FS,
        )
        assert 0.0 <= accuracy <= 1.0
        assert 0.0 <= eer <= 1.0

    def test_incremental_fit_runs(self, trained_liveness):
        detector, human_wave, replay_wave = trained_liveness
        before = len(detector.network.history.loss)
        detector.incremental_fit(
            [human_wave, replay_wave], np.array([1, 0]), FS, epochs=1
        )
        assert len(detector.network.history.loss) == before + 1
