"""Tests for the HeadTalk decision pipeline."""

import numpy as np
import pytest

from repro.acoustics import Capture
from repro.core import (
    ACCEPT,
    REJECT_DEGRADED_INPUT,
    REJECT_MECHANICAL,
    REJECT_NO_SPEECH,
    REJECT_NON_FACING,
)

FS = 48_000


@pytest.fixture(scope="module")
def pipeline(trained_pipeline):
    """A fully trained pipeline over fixture-style captures.

    The training recipe lives in ``tests/conftest.py`` as the
    session-scoped ``trained_pipeline`` fixture so the streaming and
    serving tests judge captures with the exact same models.
    """
    return trained_pipeline


class TestDecisions:
    def test_forward_human_accepted(self, pipeline, forward_capture):
        decision = pipeline.evaluate(forward_capture)
        assert decision.accepted
        assert decision.reason == ACCEPT
        assert decision.facing_probability >= 0.5

    def test_backward_human_soft_rejected(self, pipeline, backward_capture):
        """Orientation path: liveness skipped so the non-facing rejection
        is exercised directly (a tiny liveness net can also reject
        backward speech as mechanical, which is a different test)."""
        decision = pipeline.evaluate(backward_capture, check_liveness=False)
        assert not decision.accepted
        assert decision.reason == REJECT_NON_FACING

    def test_backward_human_rejected_with_liveness_on(self, pipeline, backward_capture):
        decision = pipeline.evaluate(backward_capture)
        assert not decision.accepted
        assert decision.reason in (REJECT_NON_FACING, REJECT_MECHANICAL)

    def test_replay_rejected_as_mechanical(self, pipeline, replay_capture):
        decision = pipeline.evaluate(replay_capture)
        assert not decision.accepted
        assert decision.reason in (REJECT_MECHANICAL, REJECT_NON_FACING)

    def test_silence_rejected_without_model_calls(self, pipeline):
        silent = Capture(channels=np.zeros((4, FS // 4)), sample_rate=FS)
        decision = pipeline.evaluate(silent)
        assert not decision.accepted
        assert decision.reason == REJECT_NO_SPEECH
        assert decision.liveness_ms == 0.0

    def test_liveness_can_be_skipped(self, pipeline, forward_capture):
        decision = pipeline.evaluate(forward_capture, check_liveness=False)
        assert decision.liveness_score == 1.0
        assert decision.liveness_ms == 0.0

    def test_latency_recorded(self, pipeline, forward_capture):
        decision = pipeline.evaluate(forward_capture)
        assert decision.orientation_ms > 0
        assert decision.preprocess_ms > 0
        assert decision.total_ms == pytest.approx(
            decision.preprocess_ms + decision.liveness_ms + decision.orientation_ms
        )

    def test_batch_matches_serial(self, pipeline, forward_capture, backward_capture, replay_capture):
        captures = [forward_capture, backward_capture, replay_capture]
        serial = [pipeline.evaluate(c) for c in captures]
        batch = pipeline.evaluate_batch(captures)
        assert len(batch) == len(captures)
        for one, many in zip(serial, batch):
            assert many.fingerprint() == one.fingerprint()
        assert batch.timings.n_captures == len(captures)
        assert batch.timings.total_ms == pytest.approx(
            batch.timings.preprocess_ms
            + batch.timings.liveness_ms
            + batch.timings.orientation_ms
        )

    def test_batch_handles_silence_and_skip_liveness(self, pipeline, forward_capture):
        silent = Capture(channels=np.zeros((4, FS // 4)), sample_rate=FS)
        batch = pipeline.evaluate_batch([silent, forward_capture], check_liveness=False)
        first, second = batch.decisions
        assert first.reason == REJECT_NO_SPEECH
        assert first.liveness_ms == 0.0 and first.orientation_ms == 0.0
        assert second.liveness_score == 1.0
        assert second.fingerprint() == pipeline.evaluate(
            forward_capture, check_liveness=False
        ).fingerprint()

    def test_batch_rejects_empty(self, pipeline):
        with pytest.raises(ValueError, match="non-empty"):
            pipeline.evaluate_batch([])

    def test_channel_mismatch_rejected(self, pipeline):
        bad = Capture(channels=np.zeros((2, FS // 4)), sample_rate=FS)
        decision = pipeline.evaluate(bad)
        assert not decision.accepted
        assert decision.reason == REJECT_DEGRADED_INPUT
        assert decision.degraded
        assert decision.detail.startswith("channel-count:")

    def test_sample_rate_mismatch_rejected(self, pipeline, forward_capture):
        bad = Capture(channels=forward_capture.channels, sample_rate=FS // 2)
        decision = pipeline.evaluate(bad)
        assert not decision.accepted
        assert decision.reason == REJECT_DEGRADED_INPUT
        assert decision.detail.startswith("sample-rate:")
