"""Tests for the orientation feature extractors."""

import numpy as np
import pytest

from repro.arrays import get_device
from repro.core import GccOnlyFeatureExtractor, OrientationFeatureExtractor, preprocess
from repro.core.preprocessing import DenoisedAudio


class TestDimensions:
    def test_d2_subset_dimension_matches_paper_formula(self, extractor):
        """For the 4-channel D2 slice: 6 pairs x 27 lags + 6 TDoAs = 168
        GCC values (the paper's number), plus peaks/stats/directivity."""
        n_pairs = 6
        window = 27
        gcc_block = n_pairs * window + n_pairs
        assert gcc_block == 168
        expected = gcc_block + 3 + 10 + 1 + 60
        assert extractor.n_features == expected

    def test_d3_dimension(self):
        extractor = OrientationFeatureExtractor(get_device("D3"))
        gcc_block = 6 * 21 + 6
        assert extractor.n_features == gcc_block + 3 + 10 + 1 + 60

    def test_gcc_only_dimension(self, d2_subset):
        baseline = GccOnlyFeatureExtractor(d2_subset)
        assert baseline.n_features == 6 * 27 + 6

    def test_feature_groups_partition_the_vector(self, extractor):
        groups = extractor.feature_groups()
        assert set(groups) == {"gcc", "srp", "stats", "directivity"}
        covered = sorted(
            index
            for block in groups.values()
            for index in range(block.start, block.stop)
        )
        assert covered == list(range(extractor.n_features))

    def test_feature_groups_match_block_sizes(self, extractor):
        groups = extractor.feature_groups()
        assert groups["gcc"].stop - groups["gcc"].start == 168
        assert groups["srp"].stop - groups["srp"].start == 8  # 3 peaks + 5 stats
        assert groups["stats"].stop - groups["stats"].start == 5
        assert groups["directivity"].stop - groups["directivity"].start == 61


class TestExtraction:
    def test_vector_shape_and_finite(self, extractor, forward_capture):
        audio = preprocess(forward_capture)
        features = extractor.extract(audio)
        assert features.shape == (extractor.n_features,)
        assert np.all(np.isfinite(features))

    def test_deterministic(self, extractor, forward_capture):
        audio = preprocess(forward_capture)
        assert np.array_equal(extractor.extract(audio), extractor.extract(audio))

    def test_forward_backward_differ(self, extractor, forward_capture, backward_capture):
        forward = extractor.extract(preprocess(forward_capture))
        backward = extractor.extract(preprocess(backward_capture))
        assert not np.allclose(forward, backward, rtol=0.1)

    def test_batch_stacks(self, extractor, forward_capture, backward_capture):
        audios = [preprocess(forward_capture), preprocess(backward_capture)]
        matrix = extractor.extract_batch(audios)
        assert matrix.shape == (2, extractor.n_features)

    def test_batch_empty_rejected(self, extractor):
        with pytest.raises(ValueError):
            extractor.extract_batch([])

    def test_wrong_channel_count_rejected(self, extractor):
        audio = DenoisedAudio(
            channels=np.random.default_rng(0).standard_normal((2, 4800)),
            sample_rate=48_000,
            had_speech=True,
        )
        with pytest.raises(ValueError, match="channels"):
            extractor.extract(audio)

    def test_too_short_utterance_rejected(self, extractor):
        audio = DenoisedAudio(
            channels=np.zeros((4, 16)), sample_rate=48_000, had_speech=True
        )
        with pytest.raises(ValueError, match="too short"):
            extractor.extract(audio)

    def test_gcc_only_extracts(self, d2_subset, forward_capture):
        baseline = GccOnlyFeatureExtractor(d2_subset)
        features = baseline.extract(preprocess(forward_capture))
        assert features.shape == (baseline.n_features,)

    def test_gcc_only_is_prefix_compatible(self, d2_subset, extractor, forward_capture):
        """The baseline's GCC block equals the full extractor's GCC block
        (same audio, same lags) — the extra features are strictly added."""
        audio = preprocess(forward_capture)
        full = extractor.extract(audio)
        base = GccOnlyFeatureExtractor(d2_subset).extract(audio)
        assert np.allclose(full[: base.size], base)


class TestSharedValidation:
    """Both extractors run the same channel validation (regression:
    GccOnlyFeatureExtractor used to accept malformed input silently)."""

    def test_gcc_only_rejects_wrong_channel_count(self, d2_subset):
        baseline = GccOnlyFeatureExtractor(d2_subset)
        audio = DenoisedAudio(
            channels=np.random.default_rng(0).standard_normal((2, 4800)),
            sample_rate=48_000,
            had_speech=True,
        )
        with pytest.raises(ValueError, match="channels"):
            baseline.extract(audio)

    def test_gcc_only_rejects_too_short_utterance(self, d2_subset):
        baseline = GccOnlyFeatureExtractor(d2_subset)
        audio = DenoisedAudio(
            channels=np.zeros((4, 16)), sample_rate=48_000, had_speech=True
        )
        with pytest.raises(ValueError, match="too short"):
            baseline.extract(audio)

    def test_gcc_only_batch_rejects_malformed(self, d2_subset, forward_capture):
        baseline = GccOnlyFeatureExtractor(d2_subset)
        good = preprocess(forward_capture)
        bad = DenoisedAudio(
            channels=np.zeros((3, 4800)), sample_rate=48_000, had_speech=True
        )
        with pytest.raises(ValueError, match="channels"):
            baseline.extract_batch([good, bad])

    def test_gcc_only_rejects_1d_input(self, d2_subset):
        baseline = GccOnlyFeatureExtractor(d2_subset)
        audio = DenoisedAudio(
            channels=np.zeros(4800), sample_rate=48_000, had_speech=True
        )
        with pytest.raises(ValueError, match="channels"):
            baseline.extract(audio)
