"""Tests for the privacy-control state machine (Figure 1 semantics)."""

import numpy as np
import pytest

from repro.acoustics import Capture
from repro.core import (
    ENTER_HEADTALK,
    EXIT_HEADTALK,
    EventKind,
    Mode,
    VoiceAssistantController,
)
from repro.core.pipeline import Decision


class StubPipeline:
    """Pipeline stub with a scripted accept/reject answer."""

    def __init__(self, accept: bool, session_seconds: float = 60.0):
        self.accept = accept
        self.calls = 0

        class _Config:
            pass

        self.config = _Config()
        self.config.session_seconds = session_seconds

    def evaluate(self, capture):
        self.calls += 1
        return Decision(
            accepted=self.accept,
            reason="accepted" if self.accept else "non-facing",
            liveness_score=0.9,
            facing_probability=0.9 if self.accept else 0.1,
            liveness_ms=1.0,
            orientation_ms=2.0,
        )


def capture():
    return Capture(channels=np.zeros((4, 100)), sample_rate=48_000)


class TestModeChanges:
    def test_starts_in_normal(self):
        controller = VoiceAssistantController(pipeline=StubPipeline(True))
        assert controller.mode is Mode.NORMAL

    def test_mute_button_toggles(self):
        controller = VoiceAssistantController(pipeline=StubPipeline(True))
        assert controller.press_mute_button() is Mode.MUTE
        assert controller.press_mute_button() is Mode.NORMAL

    def test_enter_and_exit_headtalk(self):
        controller = VoiceAssistantController(pipeline=StubPipeline(True))
        assert controller.voice_command(ENTER_HEADTALK) is Mode.HEADTALK
        assert controller.voice_command(EXIT_HEADTALK) is Mode.NORMAL

    def test_commands_ignored_while_muted(self):
        controller = VoiceAssistantController(pipeline=StubPipeline(True))
        controller.press_mute_button()
        assert controller.voice_command(ENTER_HEADTALK) is Mode.MUTE

    def test_unknown_command_rejected(self):
        controller = VoiceAssistantController(pipeline=StubPipeline(True))
        with pytest.raises(ValueError, match="unrecognized"):
            controller.voice_command("order pizza")


class TestNormalMode:
    def test_wake_word_uploads(self):
        controller = VoiceAssistantController(pipeline=StubPipeline(True))
        event = controller.on_wake_word(capture())
        assert event.kind is EventKind.UPLOADED

    def test_pipeline_not_consulted(self):
        stub = StubPipeline(True)
        controller = VoiceAssistantController(pipeline=stub)
        controller.on_wake_word(capture())
        assert stub.calls == 0


class TestMuteMode:
    def test_nothing_processed(self):
        stub = StubPipeline(True)
        controller = VoiceAssistantController(pipeline=stub)
        controller.press_mute_button()
        event = controller.on_wake_word(capture())
        assert event.kind is EventKind.HARD_MUTED
        assert stub.calls == 0
        assert controller.uploaded_count() == 0


class TestHeadTalkMode:
    def make(self, accept, session_seconds=60.0):
        controller = VoiceAssistantController(
            pipeline=StubPipeline(accept, session_seconds)
        )
        controller.voice_command(ENTER_HEADTALK)
        return controller

    def test_accepted_wake_word_opens_session(self):
        controller = self.make(accept=True)
        event = controller.on_wake_word(capture(), now=0.0)
        assert event.kind is EventKind.UPLOADED
        assert controller.session_open_at(30.0)
        assert not controller.session_open_at(61.0)

    def test_rejected_wake_word_soft_mutes(self):
        controller = self.make(accept=False)
        event = controller.on_wake_word(capture(), now=0.0)
        assert event.kind is EventKind.SOFT_MUTED
        assert not controller.session_open_at(1.0)

    def test_session_commands_skip_pipeline(self):
        controller = self.make(accept=True)
        stub = controller.pipeline
        controller.on_wake_word(capture(), now=0.0)
        event = controller.on_wake_word(capture(), now=10.0)
        assert event.kind is EventKind.SESSION_COMMAND
        assert stub.calls == 1  # only the first wake word was evaluated

    def test_session_expires(self):
        controller = self.make(accept=True, session_seconds=5.0)
        controller.on_wake_word(capture(), now=0.0)
        event = controller.on_followup_audio(now=10.0)
        assert event.kind is EventKind.SOFT_MUTED

    def test_followup_without_session_soft_muted(self):
        controller = self.make(accept=False)
        event = controller.on_followup_audio(now=0.0)
        assert event.kind is EventKind.SOFT_MUTED

    def test_mode_change_closes_session(self):
        controller = self.make(accept=True)
        controller.on_wake_word(capture(), now=0.0)
        controller.voice_command(EXIT_HEADTALK, now=1.0)
        controller.voice_command(ENTER_HEADTALK, now=2.0)
        assert not controller.session_open_at(3.0)


class TestCloudLedger:
    def test_uploads_reach_the_cloud(self):
        controller = VoiceAssistantController(pipeline=StubPipeline(True))
        controller.on_wake_word(capture(), now=0.0)
        assert len(controller.cloud_recordings) == 1
        assert controller.cloud_recordings[0].time == 0.0

    def test_soft_muted_audio_never_reaches_cloud(self):
        controller = VoiceAssistantController(pipeline=StubPipeline(False))
        controller.voice_command(ENTER_HEADTALK, now=0.0)
        controller.on_wake_word(capture(), now=1.0)
        assert controller.cloud_recordings == []

    def test_delete_history(self):
        from repro.core import DELETE_HISTORY

        controller = VoiceAssistantController(pipeline=StubPipeline(True))
        controller.on_wake_word(capture(), now=0.0)
        controller.on_wake_word(capture(), now=1.0)
        assert len(controller.cloud_recordings) == 2
        controller.voice_command(DELETE_HISTORY, now=2.0)
        assert controller.cloud_recordings == []
        # The on-device audit log survives deletion (it never left).
        assert len(controller.audit_log) == 3

    def test_delete_history_returns_count(self):
        controller = VoiceAssistantController(pipeline=StubPipeline(True))
        controller.on_wake_word(capture(), now=0.0)
        assert controller.delete_history(now=1.0) == 1
        assert controller.delete_history(now=2.0) == 0


class TestAuditLog:
    def test_everything_logged(self):
        controller = VoiceAssistantController(pipeline=StubPipeline(False))
        controller.voice_command(ENTER_HEADTALK, now=0.0)
        controller.on_wake_word(capture(), now=1.0)
        controller.on_followup_audio(now=2.0)
        kinds = [event.kind for event in controller.audit_log]
        assert kinds == [
            EventKind.MODE_CHANGE,
            EventKind.SOFT_MUTED,
            EventKind.SOFT_MUTED,
        ]

    def test_uploaded_count(self):
        controller = VoiceAssistantController(pipeline=StubPipeline(True))
        controller.on_wake_word(capture(), now=0.0)  # normal mode upload
        controller.voice_command(ENTER_HEADTALK, now=1.0)
        controller.on_wake_word(capture(), now=2.0)  # headtalk accepted
        controller.on_wake_word(capture(), now=3.0)  # session command
        assert controller.uploaded_count() == 3

    def test_decision_attached_to_headtalk_events(self):
        controller = VoiceAssistantController(pipeline=StubPipeline(False))
        controller.voice_command(ENTER_HEADTALK)
        event = controller.on_wake_word(capture(), now=1.0)
        assert event.decision is not None
        assert event.decision.reason == "non-facing"


class TestScriptedSessionAudit:
    """A full NORMAL → HEADTALK → MUTE session, event by event.

    Pins the exact audit-event sequence (and the obs mirror of it) for
    the canonical walkthrough: normal-mode upload, HeadTalk entry, an
    accepted wake word opening a session, two in-session commands that
    must NOT re-run the pipeline, session expiry soft-muting a follow-up,
    then hard mute swallowing everything.
    """

    def script(self, controller):
        controller.on_wake_word(capture(), now=0.0)  # NORMAL: uploaded
        controller.voice_command(ENTER_HEADTALK, now=1.0)
        controller.on_wake_word(capture(), now=2.0)  # evaluated: session opens
        controller.on_wake_word(capture(), now=3.0)  # in session: no re-check
        controller.on_followup_audio(now=4.0)  # in session: no re-check
        controller.on_followup_audio(now=70.0)  # session expired (60 s)
        controller.press_mute_button(now=71.0)
        controller.on_wake_word(capture(), now=72.0)  # hard muted
        controller.voice_command(ENTER_HEADTALK, now=73.0)  # ignored while muted

    def test_exact_event_sequence(self):
        stub = StubPipeline(True)
        controller = VoiceAssistantController(pipeline=stub)
        self.script(controller)
        assert [event.kind for event in controller.audit_log] == [
            EventKind.UPLOADED,
            EventKind.MODE_CHANGE,
            EventKind.UPLOADED,
            EventKind.SESSION_COMMAND,
            EventKind.SESSION_COMMAND,
            EventKind.SOFT_MUTED,
            EventKind.MODE_CHANGE,
            EventKind.HARD_MUTED,
            EventKind.HARD_MUTED,
        ]
        # The pipeline ran exactly once: the wake word that opened the
        # session.  In-session commands, normal mode and mute never
        # consult it ("the user does not need to continuously face the
        # device for the remaining session").
        assert stub.calls == 1
        # Two UPLOADED + two SESSION_COMMAND events reached the cloud.
        assert controller.uploaded_count() == 4

    def test_obs_mirror_carries_kind_mode_and_decision(self):
        from repro.obs import audit_log, observed

        stub = StubPipeline(True)
        controller = VoiceAssistantController(pipeline=stub)
        # The global ring may already hold records (instrumented CI runs
        # the whole suite with REPRO_OBS=1); only this script's tail is
        # under test.
        before = len(audit_log().records())
        with observed():
            self.script(controller)
        records = [
            r for r in audit_log().records()[before:] if r["event"] == "gate"
        ]
        assert [r["kind"] for r in records] == [
            e.kind.value for e in controller.audit_log
        ]
        opened = records[2]
        assert opened["mode"] == "headtalk"
        assert opened["accepted"] is True
        assert opened["reason"] == "accepted"
        assert records[3]["accepted"] is None  # session command: no decision
