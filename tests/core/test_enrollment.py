"""Tests for enrollment and model refresh."""

import numpy as np
import pytest

from repro.core import (
    DEFAULT_DEFINITION,
    DEFINITION_1,
    Enrollment,
    FACING,
    NON_FACING,
    build_enrollment_set,
    ground_truth_labels,
    preprocess,
)


@pytest.fixture(scope="module")
def enrollment_audios(request):
    forward = request.getfixturevalue("forward_capture")
    backward = request.getfixturevalue("backward_capture")
    audios = [preprocess(forward), preprocess(backward)] * 4
    angles = [0.0, 180.0] * 4
    return audios, angles


class TestBuildEnrollmentSet:
    def test_labels_follow_definition(self, extractor, enrollment_audios):
        audios, angles = enrollment_audios
        built = build_enrollment_set(audios, angles, extractor, DEFAULT_DEFINITION)
        assert built.n_samples == len(audios)
        assert set(built.labels.tolist()) == {FACING, NON_FACING}
        assert built.n_excluded == 0

    def test_excluded_angles_dropped(self, extractor, enrollment_audios):
        audios, _ = enrollment_audios
        angles = [0.0, 60.0] * 4  # 60 deg excluded under Definition-4
        built = build_enrollment_set(audios, angles, extractor, DEFAULT_DEFINITION)
        assert built.n_excluded == 4
        assert built.n_samples == 4

    def test_definition_1_keeps_45(self, extractor, enrollment_audios):
        audios, _ = enrollment_audios
        angles = [45.0, 90.0] * 4
        built = build_enrollment_set(audios, angles, extractor, DEFINITION_1)
        assert built.n_excluded == 0

    def test_all_excluded_rejected(self, extractor, enrollment_audios):
        audios, _ = enrollment_audios
        with pytest.raises(ValueError, match="excluded"):
            build_enrollment_set(audios, [60.0] * len(audios), extractor, DEFAULT_DEFINITION)

    def test_misaligned_inputs(self, extractor, enrollment_audios):
        audios, _ = enrollment_audios
        with pytest.raises(ValueError, match="align"):
            build_enrollment_set(audios, [0.0], extractor, DEFAULT_DEFINITION)

    def test_empty_rejected(self, extractor):
        with pytest.raises(ValueError):
            build_enrollment_set([], [], extractor, DEFAULT_DEFINITION)


class TestGroundTruthLabels:
    def test_vectorized(self):
        labels = ground_truth_labels(np.array([0.0, 45.0, 180.0]))
        assert labels.tolist() == [FACING, NON_FACING, NON_FACING]


class TestEnrollment:
    def test_enroll_trains_detector(self, d2_subset, enrollment_audios):
        audios, angles = enrollment_audios
        enrollment = Enrollment(array=d2_subset)
        detector = enrollment.enroll(audios, angles)
        assert enrollment.n_training_samples == len(audios)
        predictions = detector.predict(enrollment.extractor.extract_batch(audios))
        assert set(predictions.tolist()) <= {FACING, NON_FACING}

    def test_refresh_requires_enrollment(self, d2_subset, enrollment_audios):
        audios, _ = enrollment_audios
        enrollment = Enrollment(array=d2_subset)
        with pytest.raises(RuntimeError, match="enroll"):
            enrollment.refresh(audios, n_to_add=2)

    def test_refresh_grows_pool(self, d2_subset, enrollment_audios):
        audios, angles = enrollment_audios
        enrollment = Enrollment(array=d2_subset)
        enrollment.enroll(audios, angles)
        before = enrollment.n_training_samples
        added = enrollment.refresh(audios, n_to_add=3)
        assert 0 <= added <= 3
        assert enrollment.n_training_samples == before + added

    def test_refresh_validation(self, d2_subset, enrollment_audios):
        audios, angles = enrollment_audios
        enrollment = Enrollment(array=d2_subset)
        enrollment.enroll(audios, angles)
        with pytest.raises(ValueError):
            enrollment.refresh(audios, n_to_add=-1)
