"""Tests for the Figure 12-14 cell machinery."""

import pytest

from repro.datasets import TINY
from repro.experiments.common import factor_f1_cells


class TestFactorCells:
    @pytest.fixture(scope="class")
    def cells(self):
        return factor_f1_cells(
            TINY,
            seed=0,
            rooms=("lab",),
            devices=("D2", "D3"),
            wake_words=("computer",),
        )

    def test_one_cell_per_direction(self, cells):
        # 1 room x 2 devices x 1 word x 2 cross-session directions.
        assert len(cells) == 4

    def test_cell_fields(self, cells):
        for cell in cells:
            assert cell["room"] == "lab"
            assert cell["device"] in ("D2", "D3")
            assert 0.0 <= cell["f1"] <= 1.0
            assert 0.0 <= cell["accuracy"] <= 1.0
            assert cell["direction"] in (0, 1)

    def test_devices_covered(self, cells):
        assert {cell["device"] for cell in cells} == {"D2", "D3"}
