"""TINY-scale checks of the extension experiments (E24-E26)."""

import pytest

from repro.datasets import TINY
from repro.experiments import exp_moving_speaker, exp_multi_va, exp_operating_point


class TestMovingSpeaker:
    def test_scenarios_and_ordering(self):
        result = exp_moving_speaker.run(TINY, n_repetitions=2)
        assert len(result.rows) == 6
        assert result.summary["steady_facing"] > result.summary["steady_backward"]

    def test_validation(self):
        with pytest.raises(ValueError):
            exp_moving_speaker.run(TINY, n_repetitions=0)


class TestMultiVa:
    def test_cross_device_probabilities(self):
        result = exp_multi_va.run(TINY, n_repetitions=2)
        assert len(result.rows) == 2
        east = result.rows[0]
        west = result.rows[1]
        # Directional preference for the faced device.
        assert east["p_facing_va_east"] > east["p_facing_va_west"] - 0.05
        assert west["p_facing_va_west"] > west["p_facing_va_east"] - 0.05


class TestProminentPeaks:
    def test_counts_only_tall_peaks(self):
        import numpy as np

        from repro.experiments.exp_propagation_insights import prominent_peak_count

        curve = np.array([0.0, 1.0, 0.0, 0.05, 0.0, 0.6, 0.0])
        assert prominent_peak_count(curve, threshold=0.3) == 2

    def test_empty_curve(self):
        import numpy as np

        from repro.experiments.exp_propagation_insights import prominent_peak_count

        assert prominent_peak_count(np.zeros(2)) == 0


class TestOperatingPoint:
    def test_monotone_tradeoff(self):
        result = exp_operating_point.run(TINY)
        assert result.summary["far_monotone_decreasing"]
        assert result.summary["frr_monotone_increasing"]
        assert 0.0 <= result.summary["eer_pct"] <= 100.0
