"""Tests for the shared experiment plumbing."""

import numpy as np
import pytest

from repro.core import DEFAULT_DEFINITION, DEFINITION_1, FACING, NON_FACING
from repro.experiments.common import (
    cross_session_evaluation,
    evaluate_detector,
    fit_detector,
    labeled_arrays,
)


class TestLabeledArrays:
    def test_excludes_boundary_angles(self, tiny_dataset):
        X, y = labeled_arrays(tiny_dataset, DEFAULT_DEFINITION)
        # TINY grid has 14 angles/session; Definition-4 keeps 10.
        assert X.shape[0] == 20
        assert set(y.tolist()) == {FACING, NON_FACING}

    def test_definition_1_keeps_more(self, tiny_dataset):
        X4, _ = labeled_arrays(tiny_dataset, DEFAULT_DEFINITION)
        X1, _ = labeled_arrays(tiny_dataset, DEFINITION_1)
        assert X1.shape[0] > X4.shape[0]


class TestFitEvaluate:
    def test_detector_reports(self, tiny_dataset):
        train, test = tiny_dataset.session_split(0)
        detector = fit_detector(train, DEFAULT_DEFINITION)
        report = evaluate_detector(detector, test, DEFAULT_DEFINITION)
        assert 0.0 <= report.accuracy <= 1.0
        assert report.n_samples == 10

    def test_cross_session_averages_both_directions(self, tiny_dataset):
        outcome = cross_session_evaluation(tiny_dataset, DEFAULT_DEFINITION)
        assert len(outcome.reports) == 2
        expected = np.mean([r.accuracy for r in outcome.reports])
        assert outcome.mean_accuracy == pytest.approx(expected)

    def test_cross_session_needs_two_sessions(self, tiny_dataset):
        single = tiny_dataset.subset(session=0)
        with pytest.raises(ValueError, match="sessions"):
            cross_session_evaluation(single, DEFAULT_DEFINITION)

    def test_learns_tiny_dataset(self, tiny_dataset):
        outcome = cross_session_evaluation(tiny_dataset, DEFAULT_DEFINITION)
        assert outcome.mean_accuracy > 0.7
