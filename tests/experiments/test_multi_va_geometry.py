"""Geometry checks for the multi-VA experiment's device-relative math."""

import numpy as np
import pytest

from repro.acoustics import DevicePlacement, Scene, SpeakerPose, lab_room
from repro.arrays import get_device


def reconstruct_scene(placement, speaker_xy, facing_xy, mouth=1.65):
    """The same conversion exp_multi_va uses: absolute world geometry to
    device-relative (distance, radial, head-angle)."""
    to_device = placement.position[:2] - speaker_xy
    distance = float(np.linalg.norm(to_device))
    device_bearing = np.degrees(np.arctan2(to_device[1], to_device[0]))
    facing_bearing = np.degrees(np.arctan2(facing_xy[1], facing_xy[0]))
    head_angle = ((facing_bearing - device_bearing + 180.0) % 360.0) - 180.0
    radial = ((np.degrees(np.arctan2(-to_device[1], -to_device[0]))
               - placement.facing_deg + 180.0) % 360.0) - 180.0
    return Scene(
        room=lab_room(),
        device=get_device("D3"),
        placement=placement,
        pose=SpeakerPose(
            distance_m=distance,
            radial_deg=float(radial),
            head_angle_deg=float(head_angle),
            mouth_height=mouth,
        ),
    )


class TestAbsoluteToRelative:
    @pytest.mark.parametrize("facing_deg", [0.0, 90.0, 180.0, -135.0])
    def test_source_lands_at_speaker_position(self, facing_deg):
        placement = DevicePlacement("va", (2.0, 2.0), 0.74, facing_deg=facing_deg)
        speaker_xy = np.array([4.0, 1.2])
        scene = reconstruct_scene(placement, speaker_xy, np.array([1.0, 0.0]))
        assert np.allclose(scene.source_position[:2], speaker_xy, atol=1e-9)

    def test_facing_vector_matches_world_facing(self):
        placement = DevicePlacement("va", (2.0, 2.0), 0.74, facing_deg=30.0)
        speaker_xy = np.array([4.0, 2.5])
        facing_xy = np.array([-1.0, 0.5])
        scene = reconstruct_scene(placement, speaker_xy, facing_xy)
        expected = facing_xy / np.linalg.norm(facing_xy)
        assert np.allclose(scene.facing_vector[:2], expected, atol=1e-9)

    def test_facing_the_device_gives_zero_head_angle(self):
        placement = DevicePlacement("va", (1.0, 3.0), 0.74, facing_deg=0.0)
        speaker_xy = np.array([4.0, 1.0])
        facing_xy = placement.position[:2] - speaker_xy
        scene = reconstruct_scene(placement, speaker_xy, facing_xy)
        assert abs(scene.pose.head_angle_deg) < 1e-9
