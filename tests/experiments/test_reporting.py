"""Tests for table rendering and the experiment result record."""

import pytest

from repro.reporting import ExperimentResult, format_cell, render_table


class TestFormatCell:
    def test_floats_two_decimals(self):
        assert format_cell(3.14159) == "3.14"

    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_strings_passthrough(self):
        assert format_cell("abc") == "abc"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["name", "value"], [["a", 1.0], ["long-name", 22.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_width_mismatch(self):
        with pytest.raises(ValueError, match="row width"):
            render_table(["a"], [["x", "y"]])

    def test_empty_headers(self):
        with pytest.raises(ValueError):
            render_table([], [])


class TestExperimentResult:
    def make(self):
        return ExperimentResult(
            experiment_id="E99",
            title="demo",
            headers=["k", "v"],
            rows=[{"k": "a", "v": 1.0}, {"k": "b", "v": 2.0}],
            paper="paper said 42",
            notes="a note",
        )

    def test_to_text_contains_everything(self):
        text = self.make().to_text()
        assert "E99" in text
        assert "paper said 42" in text
        assert "a note" in text
        assert "1.00" in text

    def test_column(self):
        assert self.make().column("v") == [1.0, 2.0]

    def test_column_unknown(self):
        with pytest.raises(ValueError):
            self.make().column("zz")

    def test_missing_column_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            ExperimentResult(
                experiment_id="E1",
                title="t",
                headers=["a", "b"],
                rows=[{"a": 1}],
            )
