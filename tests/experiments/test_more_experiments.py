"""TINY-scale runs of the heavier experiments — structure and direction
checks without bench-scale cost."""


from repro.datasets import Scale, TINY
from repro.experiments import (
    exp_cross_environment,
    exp_cross_user,
    exp_distance,
    exp_dov_comparison,
    exp_noise,
    exp_placement,
    exp_temporal,
    exp_training_size,
)

SMALL = Scale(name="small", locations=((1.0, 0.0), (3.0, 0.0)), repetitions=1, sessions=2)


class TestTemporal:
    def test_rows_cover_grid(self):
        result = exp_temporal.run(TINY, additions=(0, 5))
        timeframes = {row["timeframe"] for row in result.rows}
        assert timeframes == {"week", "month"}
        n_added = {row["n_added"] for row in result.rows}
        assert n_added == {0, 5}

    def test_summary_structure(self):
        result = exp_temporal.run(TINY, additions=(0, 5))
        assert set(result.summary["stale"]) == {"week", "month"}


class TestNoise:
    def test_noise_conditions_present(self):
        result = exp_noise.run(TINY)
        names = [row["noise"] for row in result.rows]
        assert names[0].startswith("none")
        assert any("white" in n for n in names)
        assert any("tv" in n for n in names)


class TestPlacement:
    def test_placements_b_and_c(self):
        result = exp_placement.run(TINY)
        assert [row["placement"] for row in result.rows] == ["B", "C"]


class TestCrossEnvironment:
    def test_mixed_recovers(self):
        result = exp_cross_environment.run(TINY)
        row = result.rows[0]
        assert row["mixed_training_acc_pct"] >= row["cross_room_acc_pct"] - 5.0


class TestDistance:
    def test_three_distances(self):
        result = exp_distance.run(SMALL)
        distances = [row["distance_m"] for row in result.rows]
        assert distances == [1.0, 3.0]  # SMALL scale renders 1 m and 3 m


class TestTrainingSize:
    def test_sizes_monotone_rows(self):
        result = exp_training_size.run(SMALL, sizes=(3, 6), repeats=2)
        sizes = [row["train_per_class"] for row in result.rows]
        assert sizes == sorted(sizes)
        assert all(0 <= row["f1_mean_pct"] <= 100 for row in result.rows)


class TestCrossUser:
    def test_three_upsamplers(self):
        result = exp_cross_user.run(TINY, n_users=3)
        assert [row["upsampling"] for row in result.rows] == ["none", "smote", "adasyn"]
        assert len(result.summary["per_user_adasyn"]) == 3


class TestDovComparison:
    def test_two_feature_sets(self):
        result = exp_dov_comparison.run(TINY, n_users=2)
        names = [row["features"] for row in result.rows]
        assert any("headtalk" in n for n in names)
        assert any("baseline" in n for n in names)
        assert all(0 <= row["accuracy_pct"] <= 100 for row in result.rows)
