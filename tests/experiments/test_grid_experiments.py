"""TINY-scale runs of the Figure 12-14 grid experiments and liveness.

The first grid experiment renders the full rooms x devices x words TINY
grid; the rest reuse the process-level dataset cache, so the three
together cost barely more than one.
"""


from repro.datasets import TINY
from repro.experiments import exp_devices, exp_environment, exp_liveness, exp_wakewords


class TestGridExperiments:
    def test_wakewords_rows(self):
        result = exp_wakewords.run(TINY)
        words = [row["wake_word"] for row in result.rows]
        assert words == ["hey assistant", "computer", "amazon"]
        assert all(row["n_cells"] == 12 for row in result.rows)

    def test_devices_rows(self):
        result = exp_devices.run(TINY)
        devices = [row["device"] for row in result.rows]
        assert devices == ["D1", "D2", "D3"]
        snrs = [row["snr_db"] for row in result.rows]
        assert all(s == s for s in snrs)  # no NaNs

    def test_environment_rows(self):
        result = exp_environment.run(TINY)
        rooms = [row["room"] for row in result.rows]
        assert rooms == ["lab", "home"]
        rt60 = {row["room"]: row["rt60_1khz_s"] for row in result.rows}
        assert rt60["home"] > rt60["lab"]


class TestLivenessPlumbing:
    def test_tiny_run_structure(self):
        """Plumbing only: stage names and metric ranges (the learning
        behavior is exercised at bench scale)."""
        result = exp_liveness.run(
            TINY, n_pretrain=12, pretrain_epochs=2, adapt_epochs=1
        )
        stages = [row["stage"] for row in result.rows]
        assert len(stages) == 4
        assert stages[0].startswith("pretrain")
        assert stages[-1].startswith("incremental")
        for row in result.rows:
            assert 0.0 <= row["accuracy_pct"] <= 100.0
            assert 0.0 <= row["eer_pct"] <= 100.0
