"""Smoke tests: cheap experiments run end to end at TINY scale and
produce structurally valid, directionally sane results."""

import pytest

from repro.datasets import TINY
from repro.experiments import ALL_EXPERIMENTS, run_all
from repro.experiments import (
    exp_angles,
    exp_definitions,
    exp_loudness,
    exp_model_selection,
    exp_objects,
    exp_propagation_insights,
    exp_runtime,
    exp_sitting,
    exp_spectra,
)
from repro.reporting import ExperimentResult


class TestRegistry:
    def test_all_30_experiments_registered(self):
        assert len(ALL_EXPERIMENTS) == 30
        assert set(ALL_EXPERIMENTS) == {f"E{k:02d}" for k in range(1, 31)}

    def test_run_all_validates_ids(self):
        with pytest.raises(ValueError, match="unknown"):
            run_all(("E99",))


class TestCheapExperiments:
    def test_spectra(self):
        result = exp_spectra.run(TINY, n_repetitions=2)
        assert isinstance(result, ExperimentResult)
        assert result.summary["human_to_replay_hf_ratio"] > 1.5

    def test_propagation_insights(self):
        result = exp_propagation_insights.run(TINY, n_repetitions=2)
        assert result.summary["rms_forward_over_backward"] > 1.0
        assert result.summary["hlbr_forward_over_backward"] > 1.0

    def test_definitions(self):
        result = exp_definitions.run(TINY)
        assert [row["definition"] for row in result.rows] == [
            "Definition-1", "Definition-2", "Definition-3", "Definition-4",
        ]
        assert all(0 <= row["accuracy_pct"] <= 100 for row in result.rows)

    def test_angles(self):
        result = exp_angles.run(TINY)
        zones = {row["zone"] for row in result.rows}
        assert zones == {"facing", "borderline", "non-facing"}
        assert len(result.rows) == 16  # 14 grid + 2 border angles

    def test_sitting(self):
        result = exp_sitting.run(TINY)
        assert result.rows[1]["posture"] == "sitting"
        assert 0 <= result.summary["sitting_accuracy"] <= 100

    def test_loudness_rows_sorted(self):
        result = exp_loudness.run(TINY)
        loudness = [row["loudness_db"] for row in result.rows]
        assert loudness == sorted(loudness) == [60.0, 70.0, 80.0]

    def test_objects_has_all_settings(self):
        result = exp_objects.run(TINY)
        settings = [row["setting"] for row in result.rows]
        assert settings[0] == "open (control)"
        assert set(settings[1:]) == {"partial", "full", "raised"}

    def test_model_selection_covers_backends(self):
        result = exp_model_selection.run(TINY)
        assert [row["backend"] for row in result.rows] == ["svm", "rf", "dt", "knn"]
        assert result.summary["best_backend"] in ("svm", "rf", "dt", "knn")

    def test_runtime(self):
        result = exp_runtime.run(TINY, n_trials=2)
        stages = [row["stage"] for row in result.rows]
        assert stages == ["preprocess", "liveness", "orientation", "batch-per-capture"]
        assert all(row["mean_ms"] >= 0 for row in result.rows)
        assert result.summary["total_ms"] > 0
        assert result.summary["batch_per_capture_ms"] > 0

    def test_results_render_as_text(self):
        result = exp_definitions.run(TINY)
        text = result.to_text()
        assert "E02" in text and "Definition-4" in text
