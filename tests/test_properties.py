"""Cross-module property-based tests (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp import segment_stream
from repro.dsp.localization import angular_error_deg
from repro.ml.calibration import brier_score, expected_calibration_error
from repro.userstudy import sus_score


class TestSegmenterProperties:
    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_segments_sorted_disjoint_and_in_bounds(self, seed):
        rng = np.random.default_rng(seed)
        n = 48_000 * 2
        stream = 0.01 * rng.standard_normal(n)
        # Random loud bursts.
        for _ in range(rng.integers(0, 4)):
            start = int(rng.integers(0, n - 4800))
            stream[start : start + 4800] += rng.standard_normal(4800)
        segments = segment_stream(stream, 48_000)
        previous_end = 0
        for segment in segments:
            assert 0 <= segment.start < segment.end <= n
            assert segment.start >= previous_end - 4_800  # small overlap pad only
            previous_end = segment.end


class TestCalibrationProperties:
    @given(st.integers(0, 5000))
    @settings(max_examples=25, deadline=None)
    def test_metrics_in_unit_interval(self, seed):
        rng = np.random.default_rng(seed)
        n = 64
        y = rng.integers(0, 2, n)
        p = rng.random(n)
        assert 0.0 <= expected_calibration_error(y, p) <= 1.0
        assert 0.0 <= brier_score(y, p) <= 1.0

    @given(st.integers(0, 5000))
    @settings(max_examples=25, deadline=None)
    def test_true_labels_have_zero_brier(self, seed):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, 32)
        assert brier_score(y, y.astype(float)) == 0.0


class TestAngularErrorProperties:
    @given(a=st.floats(-720, 720), b=st.floats(-720, 720))
    @settings(max_examples=60, deadline=None)
    def test_range_symmetry_identity(self, a, b):
        error = angular_error_deg(a, b)
        assert 0.0 <= error <= 180.0
        assert error == pytest.approx(angular_error_deg(b, a), abs=1e-9)
        assert angular_error_deg(a, a) == pytest.approx(0.0, abs=1e-9)

    @given(a=st.floats(-360, 360), k=st.integers(-2, 2))
    @settings(max_examples=40, deadline=None)
    def test_periodicity(self, a, k):
        assert angular_error_deg(a, a + 360.0 * k) == pytest.approx(0.0, abs=1e-6)


class TestSusProperties:
    @given(st.lists(st.integers(1, 5), min_size=10, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_complement_symmetry(self, responses):
        """Flipping every answer (6 - r) mirrors the score around 50."""
        r = np.asarray(responses)
        flipped = 6 - r
        assert sus_score(r) + sus_score(flipped) == pytest.approx(100.0)
