"""Unit behavior of the adversarial attack models (repro.attacks.models)."""

import numpy as np
import pytest

from repro.acoustics import (
    SONY_SRS_X5,
    HumanSpeaker,
    human_head_directivity,
    loudspeaker_directivity,
    replay_channel,
    synthesize_wake_word,
)
from repro.attacks import (
    DirectionalHornReplay,
    EqCompensatedReplay,
    MultiSpeakerTdoaAttack,
    SpeakeARChannel,
    coordinated_mix,
    eq_compensate,
    horn_directivity,
    rig_directivity,
    speakear_capture,
)
from repro.dsp import spectral_contrast

FS = 48_000

ATTACK_CLASSES = (
    EqCompensatedReplay,
    DirectionalHornReplay,
    MultiSpeakerTdoaAttack,
    SpeakeARChannel,
)


def _voice(seed=0):
    return HumanSpeaker.random(np.random.default_rng(seed), name="victim")


def _recording(seed=0):
    voice = _voice(seed)
    return synthesize_wake_word(
        "computer", voice.profile, FS, np.random.default_rng(seed)
    )


class TestEqCompensate:
    def test_restores_high_frequency_decay(self):
        """The whole point: inverse-EQ'd replay decays like the original."""
        original = _recording()
        rng = np.random.default_rng(1)
        naive = replay_channel(original, FS, SONY_SRS_X5, rng)
        boosted = eq_compensate(original, FS, SONY_SRS_X5, max_boost_db=18.0)
        compensated = replay_channel(boosted, FS, SONY_SRS_X5, np.random.default_rng(1))
        d_orig = spectral_contrast(original, FS).decay_db_per_octave
        d_naive = spectral_contrast(naive, FS).decay_db_per_octave
        d_comp = spectral_contrast(compensated, FS).decay_db_per_octave
        assert d_naive < d_orig - 3.0
        assert abs(d_comp - d_orig) < abs(d_naive - d_orig)

    def test_boost_ceiling_binds(self):
        """A small fidelity ceiling leaves the top octaves rolled off."""
        original = _recording()
        little = eq_compensate(original, FS, SONY_SRS_X5, max_boost_db=3.0)
        lots = eq_compensate(original, FS, SONY_SRS_X5, max_boost_db=24.0)
        d_little = spectral_contrast(little, FS).decay_db_per_octave
        d_lots = spectral_contrast(lots, FS).decay_db_per_octave
        assert d_lots > d_little

    def test_empty_and_zero_boost(self):
        assert eq_compensate(np.array([]), FS, SONY_SRS_X5, 6.0).size == 0
        x = _recording()
        assert np.array_equal(eq_compensate(x, FS, SONY_SRS_X5, 0.0), x)


class TestSpeakearCapture:
    def test_band_limits(self):
        t = np.arange(FS // 2) / FS
        tone_hi = np.sin(2 * np.pi * 6000.0 * t)
        tone_lo = np.sin(2 * np.pi * 500.0 * t)
        rng = np.random.default_rng(0)
        out_hi = speakear_capture(tone_hi, FS, rng, cutoff_hz=1500.0, noise_floor_db=-60.0)
        out_lo = speakear_capture(tone_lo, FS, np.random.default_rng(0), cutoff_hz=1500.0, noise_floor_db=-60.0)
        # Both are peak-normalized; the high tone's output is noise-dominated,
        # the low tone's keeps its sinusoidal crest factor (~0.707 RMS/peak).
        assert np.sqrt(np.mean(out_lo**2)) > 0.5
        assert np.sqrt(np.mean(out_hi**2)) < 0.5

    def test_noise_floor_fills_gaps(self):
        x = np.concatenate([np.zeros(FS // 10), _recording()[: FS // 4]])
        out = speakear_capture(x, FS, np.random.default_rng(1), 2000.0, -20.0)
        assert np.sqrt(np.mean(out[: FS // 20] ** 2)) > 0

    def test_empty(self):
        out = speakear_capture(np.array([]), FS, np.random.default_rng(0), 2000.0, -30.0)
        assert out.size == 0

    def test_cutoff_clipped_below_nyquist(self):
        """A cutoff above Nyquist must not crash the filter design."""
        out = speakear_capture(_recording()[:FS // 4], FS, np.random.default_rng(2), 40_000.0, -30.0)
        assert np.all(np.isfinite(out))


class TestCoordinatedMix:
    def test_zero_offsets_is_normalized_sum(self):
        x = _recording()[: FS // 4]
        out = coordinated_mix(x, FS, np.zeros(3), np.full(3, 1 / 3))
        assert out.shape == x.shape
        assert np.abs(out).max() == pytest.approx(1.0)

    def test_offsets_extend_waveform(self):
        x = np.ones(100)
        out = coordinated_mix(x, FS, np.array([0.0, 10 / FS]), np.array([0.5, 0.5]))
        assert out.size == 110

    def test_empty(self):
        assert coordinated_mix(np.array([]), FS, np.zeros(2), np.ones(2)).size == 0


class TestAttackDirectivities:
    def test_horn_approaches_human_head(self):
        box = loudspeaker_directivity()
        head = human_head_directivity()
        assert horn_directivity(0.0) == box
        tuned = horn_directivity(3.0)
        assert tuned.max_sharpness == pytest.approx(head.max_sharpness)
        assert tuned.rear_floor == pytest.approx(head.rear_floor)
        mid = horn_directivity(1.5)
        assert box.max_sharpness > mid.max_sharpness > head.max_sharpness

    def test_rig_broadens_with_sophistication(self):
        base = rig_directivity(0.0)
        rigged = rig_directivity(3.0)
        assert rigged.max_sharpness < base.max_sharpness
        assert rigged.rear_floor > base.rear_floor

    def test_rear_lobe_contrast_loudspeaker_vs_head(self):
        """At high frequency a box beams harder but diffracts more rearward."""
        box = loudspeaker_directivity()
        head = human_head_directivity()
        rear_box = box.gain(6000.0, np.pi)
        rear_head = head.gain(6000.0, np.pi)
        assert rear_box > rear_head  # the cabinet's diffraction floor
        # and at moderate off-axis angles the box lobe is sharper
        assert box.gain(6000.0, np.pi / 2) < head.gain(6000.0, np.pi / 2)


class TestAttackSources:
    @pytest.mark.parametrize("cls", ATTACK_CLASSES)
    def test_emission_is_mechanical(self, cls):
        rendering = cls(voice=_voice()).emit("computer", FS, np.random.default_rng(1))
        assert not rendering.is_live_human
        assert rendering.sample_rate == FS
        assert "attack" in rendering.label
        assert np.all(np.isfinite(rendering.waveform))

    @pytest.mark.parametrize("cls", ATTACK_CLASSES)
    def test_sophistication_validated(self, cls):
        with pytest.raises(ValueError):
            cls(voice=_voice(), sophistication=-1.0)
        with pytest.raises(ValueError):
            cls(voice=_voice(), sophistication=float("nan"))

    def test_eq_attack_beats_naive_decay(self):
        """Tier-3 EQ replay restores the decay slope a naive replay loses."""
        voice = _voice(3)
        naive = DirectionalHornReplay(voice=voice, sophistication=0.0)
        eq = EqCompensatedReplay(voice=voice, sophistication=3.0)
        d_naive = spectral_contrast(
            naive.emit("computer", FS, np.random.default_rng(0)).waveform, FS
        ).decay_db_per_octave
        d_eq = spectral_contrast(
            eq.emit("computer", FS, np.random.default_rng(0)).waveform, FS
        ).decay_db_per_octave
        assert d_eq > d_naive + 3.0

    def test_tdoa_speaker_count_scales(self):
        assert MultiSpeakerTdoaAttack(voice=_voice(), sophistication=1.0).n_speakers == 2
        assert MultiSpeakerTdoaAttack(voice=_voice(), sophistication=3.0).n_speakers == 4
        jitter_lo = MultiSpeakerTdoaAttack(voice=_voice(), sophistication=1.0).jitter_s
        jitter_hi = MultiSpeakerTdoaAttack(voice=_voice(), sophistication=3.0).jitter_s
        assert jitter_hi < jitter_lo

    def test_speakear_band_widens(self):
        lo = SpeakeARChannel(voice=_voice(), sophistication=1.0)
        hi = SpeakeARChannel(voice=_voice(), sophistication=3.0)
        assert hi.capture_cutoff_hz > lo.capture_cutoff_hz
        assert hi.capture_noise_floor_db < lo.capture_noise_floor_db

    def test_horn_directivity_attached(self):
        rendering = DirectionalHornReplay(voice=_voice(), sophistication=3.0).emit(
            "computer", FS, np.random.default_rng(0)
        )
        head = human_head_directivity()
        assert rendering.directivity.max_sharpness == pytest.approx(head.max_sharpness)
