"""Determinism of attack rendering: pure function of (seed, scenario, content).

The layer's contract mirrors repro.faults: an attack render is
byte-identical serially, in any pool worker, in any order, with shared
memory on or off, and at either decision dtype.
"""

import numpy as np
import pytest

from repro.acoustics import HumanSpeaker
from repro.attacks import (
    PRESET_NAMES,
    attack_render_tasks,
    attack_rng,
    attack_stream_key,
    preset_attack,
    render_attack_captures,
)
from repro.dsp.precision import precision
from repro.runtime import render_captures, set_shm_enabled, shm_enabled

FS = 48_000


def _scenario(kind="eq-replay", tier=2.0, seed=7):
    return preset_attack(kind, sophistication=tier, seed=seed)


class TestStreamKeys:
    def test_content_keyed_not_identity_keyed(self):
        x = np.sin(2 * np.pi * 440.0 * np.arange(FS // 4) / FS)
        assert attack_stream_key(x, FS) == attack_stream_key(x.copy(), FS)

    def test_sample_rate_in_key(self):
        x = np.sin(2 * np.pi * 440.0 * np.arange(FS // 4) / FS)
        assert attack_stream_key(x, FS) != attack_stream_key(x, FS // 2)

    def test_content_changes_key(self):
        x = np.sin(2 * np.pi * 440.0 * np.arange(FS // 4) / FS)
        assert attack_stream_key(x, FS) != attack_stream_key(x * 0.5, FS)

    def test_rng_depends_on_all_parts(self):
        key = attack_stream_key(np.ones(64), FS)
        base = attack_rng(0, "attack-eq", key).integers(1 << 30)
        assert attack_rng(1, "attack-eq", key).integers(1 << 30) != base
        assert attack_rng(0, "attack-horn", key).integers(1 << 30) != base


class TestEmissionDeterminism:
    @pytest.mark.parametrize("kind", sorted(PRESET_NAMES))
    def test_same_emission_same_bytes(self, kind):
        voice = HumanSpeaker.random(np.random.default_rng(0), name="victim")
        source = _scenario(kind).source_for(voice)
        a = source.emit("computer", FS, np.random.default_rng(1)).waveform
        b = source.emit("computer", FS, np.random.default_rng(1)).waveform
        assert np.array_equal(a, b)

    def test_seed_changes_stream(self):
        voice = HumanSpeaker.random(np.random.default_rng(0), name="victim")
        a = _scenario(seed=0).source_for(voice).emit("computer", FS, np.random.default_rng(1))
        b = _scenario(seed=1).source_for(voice).emit("computer", FS, np.random.default_rng(1))
        assert not np.array_equal(a.waveform, b.waveform)


class TestRenderDeterminism:
    def test_tasks_are_reproducible(self):
        first = render_attack_captures(_scenario(), n_utterances=2)
        second = render_attack_captures(_scenario(), n_utterances=2)
        for a, b in zip(first, second):
            assert np.array_equal(a.channels, b.channels)

    def test_serial_vs_pool_identical(self):
        tasks = attack_render_tasks(_scenario("tdoa-replay", 3.0), n_utterances=3)
        serial = render_captures(tasks, workers=1)
        pooled = render_captures(tasks, workers=2)
        for s, p in zip(serial, pooled):
            assert np.array_equal(s.channels, p.channels)

    @pytest.mark.parametrize("shm", [False, True])
    def test_pool_identical_with_and_without_shm(self, shm):
        previous = shm_enabled()
        set_shm_enabled(shm)
        try:
            tasks = attack_render_tasks(_scenario(), n_utterances=2)
            serial = render_captures(tasks, workers=1)
            pooled = render_captures(tasks, workers=2)
        finally:
            set_shm_enabled(previous)
        for s, p in zip(serial, pooled):
            assert np.array_equal(s.channels, p.channels)

    def test_render_bytes_independent_of_decision_dtype(self):
        """REPRO_DTYPE flips the decision path, never the rendered audio."""
        tasks32 = attack_render_tasks(_scenario("speakear"), n_utterances=2)
        with precision("float32"):
            rendered32 = render_captures(tasks32, workers=1)
        with precision("float64"):
            rendered64 = render_captures(
                attack_render_tasks(_scenario("speakear"), n_utterances=2), workers=1
            )
        for a, b in zip(rendered32, rendered64):
            assert np.array_equal(a.channels, b.channels)

    def test_scenario_seed_changes_render(self):
        a = render_attack_captures(_scenario(seed=0), n_utterances=1)[0]
        b = render_attack_captures(_scenario(seed=1), n_utterances=1)[0]
        assert not np.array_equal(a.channels, b.channels)

    def test_default_off_leaves_clean_renders_untouched(self):
        """With the layer disarmed, ordinary dataset renders are unchanged."""
        from repro.attacks import attacks_enabled, engaged
        from repro.datasets.collection import render_tasks
        from tests.runtime.test_runtime import SPEC

        tasks = [task for _, task in render_tasks(SPEC)]
        baseline = render_captures(tasks[:1], workers=1)[0]
        assert not attacks_enabled()
        with engaged(_scenario()):
            armed = render_captures(tasks[:1], workers=1)[0]
        assert np.array_equal(baseline.channels, armed.channels)
