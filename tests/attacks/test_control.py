"""Env plumbing and master-switch behavior of repro.attacks.control."""

import pytest

from repro.attacks import (
    ATTACK_SOURCE_CLASSES,
    AttackScenario,
    PRESET_NAMES,
    SOPHISTICATION_TIERS,
    active_attack,
    attack_from_env,
    attacks_enabled,
    engaged,
    preset_attack,
    set_attack_scenario,
    set_attacks_enabled,
)


class TestScenarioPresets:
    def test_presets_cover_all_families(self):
        assert set(PRESET_NAMES) == set(ATTACK_SOURCE_CLASSES)
        assert len(PRESET_NAMES) == 4

    def test_tiers_are_ascending(self):
        assert list(SOPHISTICATION_TIERS) == sorted(SOPHISTICATION_TIERS)

    def test_preset_names_scenario(self):
        scenario = preset_attack("eq-replay", sophistication=2.0, seed=5)
        assert scenario.name == "eq-replay@2"
        assert scenario.kind == "eq-replay"
        assert scenario.seed == 5

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError, match="unknown attack"):
            preset_attack("frobnicate")

    def test_scenario_validation(self):
        with pytest.raises(ValueError):
            AttackScenario(name="x", kind="not-a-kind")
        with pytest.raises(ValueError):
            AttackScenario(name="x", kind="eq-replay", sophistication=-2.0)

    def test_source_for_builds_family(self):
        from repro.acoustics import HumanSpeaker
        import numpy as np

        voice = HumanSpeaker.random(np.random.default_rng(0))
        for kind, cls in ATTACK_SOURCE_CLASSES.items():
            source = preset_attack(kind, seed=3).source_for(voice)
            assert isinstance(source, cls)
            assert source.seed == 3


class TestControlPlumbing:
    @pytest.fixture(autouse=True)
    def _restore(self):
        yield
        set_attacks_enabled(False)
        set_attack_scenario(None)

    def test_disabled_by_default(self):
        assert not attacks_enabled()
        assert active_attack() is None

    def test_engaged_restores_state(self):
        scenario = preset_attack("horn-replay")
        with engaged(scenario):
            assert attacks_enabled()
            assert active_attack() is scenario
        assert not attacks_enabled()
        assert active_attack() is None

    def test_engaged_none_arms_without_scenario(self):
        with engaged(None):
            assert attacks_enabled()
            assert active_attack() is None

    def test_env_enables_layer(self, monkeypatch):
        monkeypatch.setenv("REPRO_ATTACKS", "1")
        assert attacks_enabled()

    def test_env_scenario(self, monkeypatch):
        monkeypatch.setenv("REPRO_ATTACKS_SCENARIO", "tdoa-replay")
        monkeypatch.setenv("REPRO_ATTACKS_SOPHISTICATION", "3.0")
        monkeypatch.setenv("REPRO_ATTACKS_SEED", "9")
        scenario = attack_from_env()
        assert isinstance(scenario, AttackScenario)
        assert scenario.name == "tdoa-replay@3"
        assert scenario.sophistication == 3.0
        assert scenario.seed == 9
        set_attacks_enabled(True)
        assert active_attack() == scenario

    def test_no_env_scenario_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_ATTACKS_SCENARIO", raising=False)
        assert attack_from_env() is None

    def test_unknown_env_scenario_warns_once_and_arms_nothing(self, monkeypatch):
        from repro.obs import control

        monkeypatch.setenv("REPRO_ATTACKS_SCENARIO", "frobnicate")
        monkeypatch.setattr(control, "_WARNED", set())
        with pytest.warns(RuntimeWarning, match="frobnicate"):
            assert attack_from_env() is None
        # Second call is silent (warn-once).
        assert attack_from_env() is None

    def test_malformed_sophistication_warns_and_defaults(self, monkeypatch):
        from repro.obs import control

        monkeypatch.setenv("REPRO_ATTACKS_SCENARIO", "speakear")
        monkeypatch.setenv("REPRO_ATTACKS_SOPHISTICATION", "lots")
        monkeypatch.setattr(control, "_WARNED", set())
        with pytest.warns(RuntimeWarning, match="REPRO_ATTACKS_SOPHISTICATION"):
            scenario = attack_from_env()
        assert scenario.name == "speakear@1"

    def test_programmatic_override_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ATTACKS_SCENARIO", "eq-replay")
        override = preset_attack("speakear", seed=2)
        set_attacks_enabled(True)
        set_attack_scenario(override)
        assert active_attack() is override
