"""The hardened liveness path: physics cues, fusion weights, delegation.

These pin the *shape* of the hardening — cue ranges, window behavior,
the convex blend — not the calibration numbers, which E30 and the
benchmark baseline gate end to end.
"""

import numpy as np
import pytest

from repro.core.features import (
    OrientationFeatureExtractor,
    directivity_consistency,
    tdoa_coherence,
)
from repro.core.liveness import (
    FusedLivenessDetector,
    LivenessDetector,
    band_confidences,
    cue_score,
    liveness_cues,
)
from repro.dsp.stats import window_score

FS = 48_000


def _speech_like(seconds=0.6, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(int(seconds * FS)) / FS
    envelope = 0.5 + 0.5 * np.sin(2 * np.pi * 3.0 * t) ** 2
    x = envelope * rng.standard_normal(t.size)
    return x / np.abs(x).max()


class TestWindowScore:
    def test_trapezoid_shape(self):
        bounds = (0.0, 1.0, 2.0, 3.0)
        assert window_score(-1.0, bounds) == 0.0
        assert window_score(0.5, bounds) == pytest.approx(0.5)
        assert window_score(1.5, bounds) == 1.0
        assert window_score(2.5, bounds) == pytest.approx(0.5)
        assert window_score(4.0, bounds) == 0.0

    def test_degenerate_edges(self):
        # Zero-width ramps behave as hard edges, not divide-by-zero.
        bounds = (1.0, 1.0, 2.0, 2.0)
        assert window_score(1.0, bounds) == 1.0
        assert window_score(0.999, bounds) == 0.0
        assert window_score(2.001, bounds) == 0.0


class TestBandConfidences:
    def test_too_short_input_yields_nothing(self):
        assert band_confidences(np.zeros(512), FS) == ()

    def test_bands_beyond_nyquist_are_skipped(self):
        bands = band_confidences(_speech_like(), 8_000)
        assert all(b.low_hz < 4_000 for b in bands)

    def test_confidence_in_unit_range(self):
        for band in band_confidences(_speech_like(), FS):
            assert 0.0 <= band.confidence <= 1.0
            assert band.high_hz > band.low_hz

    def test_static_noise_floor_scores_low(self):
        """A stationary flat floor has no modulation — confidence ~ 0."""
        rng = np.random.default_rng(3)
        static = 1e-3 * rng.standard_normal(FS)
        bands = band_confidences(static, FS)
        top = bands[-2:]
        assert all(b.confidence < 0.3 for b in top)


class TestLivenessCues:
    def test_scores_bounded(self):
        cues = liveness_cues(_speech_like(), FS)
        for value in (cues.decay_score, cues.residual_floor_score, cues.score):
            assert 0.0 <= value <= 1.0

    def test_score_is_decay_heavy_blend(self):
        cues = liveness_cues(_speech_like(), FS)
        expected = 0.7 * cues.decay_score + 0.3 * cues.residual_floor_score
        assert cues.score == pytest.approx(np.clip(expected, 0.0, 1.0))

    def test_cue_score_matches(self):
        x = _speech_like(seed=5)
        assert cue_score(x, FS) == liveness_cues(x, FS).score


class TestArrayCues:
    def test_tdoa_coherence_validates_shape(self):
        with pytest.raises(ValueError):
            tdoa_coherence(np.zeros((3, 4, 5)), [(0, 1)], max_lag=2)

    def test_tdoa_coherence_bounded(self):
        rng = np.random.default_rng(0)
        max_lag = 8
        pairs = [(0, 1), (0, 2), (1, 2)]
        gcc = np.abs(rng.standard_normal((len(pairs), 2 * max_lag + 1)))
        score = tdoa_coherence(gcc, pairs, max_lag)
        assert 0.0 <= score <= 1.0

    def test_tdoa_too_perfect_point_source_scores_low(self):
        """Exact zero cycle residual = the EQ'd cabinet signature."""
        max_lag = 8
        pairs = [(0, 1), (0, 2), (1, 2)]
        gcc = np.full((len(pairs), 2 * max_lag + 1), 1e-3)
        gcc[:, max_lag] = 1.0  # every pair: razor peak at lag exactly 0
        assert tdoa_coherence(gcc, pairs, max_lag) < 0.3

    def test_directivity_consistency_needs_matrix(self):
        from repro.core.preprocessing import DenoisedAudio

        bad = DenoisedAudio(channels=np.zeros(FS), sample_rate=FS, had_speech=True)
        with pytest.raises(ValueError):
            directivity_consistency(bad)

    def test_array_cues_keys(self):
        from repro.arrays.devices import default_channel_subset, get_device
        from repro.attacks import preset_attack, render_attack_captures
        from repro.core.preprocessing import preprocess

        device = get_device("D2")
        array = device.subset(default_channel_subset(device))
        extractor = OrientationFeatureExtractor(array=array)
        capture = render_attack_captures(
            preset_attack("eq-replay", seed=1), n_utterances=1
        )[0]
        cues = extractor.array_cues(preprocess(capture))
        assert set(cues) == {"tdoa_coherence", "directivity_consistency"}
        assert all(0.0 <= v <= 1.0 for v in cues.values())


class _StubNet:
    def __init__(self, value):
        self.value = value

    def scores(self, features, positive_label=None):
        return np.full(len(features), self.value)


class _StubBase(LivenessDetector):
    def __init__(self, value):
        super().__init__()
        self._value = value

    def scores(self, waveforms, sample_rate):
        return np.full(len(waveforms), self._value)


class TestFusedLivenessDetector:
    def test_weight_validation(self):
        with pytest.raises(ValueError):
            FusedLivenessDetector(cue_weight=0.8, array_weight=0.3)
        with pytest.raises(ValueError):
            FusedLivenessDetector(cue_weight=-0.1)
        FusedLivenessDetector(cue_weight=0.0, array_weight=0.0)  # degenerate ok

    def test_single_channel_blend_formula(self):
        fused = FusedLivenessDetector(
            base=_StubBase(1.0), cue_weight=0.4, array_weight=0.1
        )
        x = _speech_like(seed=2)
        expected = 0.5 * 1.0 + 0.5 * cue_score(x, FS)
        assert fused.scores([x], FS)[0] == pytest.approx(expected)

    def test_fused_scores_without_extractor_is_single_channel(self):
        from repro.core.preprocessing import DenoisedAudio

        x = _speech_like(seed=3)
        audio = DenoisedAudio(channels=np.stack([x, x]), sample_rate=FS, had_speech=True)
        fused = FusedLivenessDetector(base=_StubBase(0.0))
        assert fused.fused_scores([audio]) == pytest.approx(fused.scores([x], FS))

    def test_fused_scores_empty(self):
        assert FusedLivenessDetector(base=_StubBase(0.0)).fused_scores([]).size == 0

    def test_network_delegates_to_base(self):
        base = _StubBase(0.5)
        assert FusedLivenessDetector(base=base).network is base.network

    def test_zero_weights_reduce_to_base(self):
        fused = FusedLivenessDetector(
            base=_StubBase(0.25), cue_weight=0.0, array_weight=0.0
        )
        assert fused.scores([_speech_like()], FS)[0] == pytest.approx(0.25)
