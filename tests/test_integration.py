"""End-to-end integration tests.

These cross module boundaries: dataset generation -> enrollment ->
pipeline -> privacy controller, exactly as a deployment would wire them.
"""

import numpy as np
import pytest

from repro.core import (
    DEFAULT_DEFINITION,
    ENTER_HEADTALK,
    EventKind,
    HeadTalkConfig,
    HeadTalkPipeline,
    LivenessDetector,
    Mode,
    VoiceAssistantController,
    preprocess,
)
from repro.core.liveness import LIVE_HUMAN, MECHANICAL
from repro.datasets import CollectionSpec, collect
from repro.experiments.common import fit_detector

FS = 48_000


@pytest.fixture(scope="module")
def deployed_controller(request):
    """A controller whose pipeline was trained via the dataset layer."""
    d2_subset = request.getfixturevalue("d2_subset")
    tiny_dataset = request.getfixturevalue("tiny_dataset")
    detector = fit_detector(tiny_dataset, DEFAULT_DEFINITION)

    # Liveness pool straight from the collection protocol.
    specs = [
        CollectionSpec(locations=((1.0, 0.0),), angles=(0.0, 90.0, 180.0), repetitions=3),
        CollectionSpec(
            locations=((1.0, 0.0),), angles=(0.0, 90.0, 180.0), repetitions=3, source="replay"
        ),
    ]
    waveforms, labels = [], []
    for spec in specs:
        for meta, capture in collect(spec, 0):
            waveforms.append(preprocess(capture).reference)
            labels.append(LIVE_HUMAN if meta.is_live_human else MECHANICAL)
    liveness = LivenessDetector(epochs=300, random_state=0)
    liveness.network.batch_size = 8
    liveness.fit(waveforms, np.asarray(labels), FS)

    pipeline = HeadTalkPipeline(
        array=d2_subset,
        liveness=liveness,
        orientation=detector,
        config=HeadTalkConfig(session_seconds=30.0),
    )
    controller = VoiceAssistantController(pipeline=pipeline)
    controller.voice_command(ENTER_HEADTALK, now=0.0)
    return controller


def fresh_captures(angle_deg: float, source_kind: str = "human", n: int = 3):
    """Captures the models never saw: session 1 of the same deployment
    (same room/base seed; new session context, new utterance tokens)."""
    spec = CollectionSpec(
        locations=((1.0, 0.0),),
        angles=(angle_deg,),
        repetitions=n,
        source=source_kind,
        session=1,
    )
    return [capture for _, capture in collect(spec, 0)]


class TestDeployedSystem:
    def test_facing_human_usually_opens_session(self, deployed_controller):
        events = [
            deployed_controller.on_wake_word(capture, now=100.0 + 100.0 * k)
            for k, capture in enumerate(fresh_captures(0.0))
        ]
        uploads = [e for e in events if e.kind is EventKind.UPLOADED]
        assert len(uploads) >= 2
        assert deployed_controller.session_open_at(uploads[-1].time + 10.0)

    def test_backward_human_soft_muted(self, deployed_controller):
        event = deployed_controller.on_wake_word(
            fresh_captures(180.0)[0], now=1000.0
        )
        assert event.kind is EventKind.SOFT_MUTED

    def test_replay_mostly_soft_muted(self, deployed_controller):
        """A tiny 18-sample liveness pool leaves individual replays near
        the boundary; the system property is that replays are blocked
        far more often than not."""
        outcomes = []
        for k, capture in enumerate(fresh_captures(0.0, source_kind="replay")):
            event = deployed_controller.on_wake_word(capture, now=2000.0 + 100.0 * k)
            outcomes.append(event.kind)
        blocked = sum(1 for kind in outcomes if kind is EventKind.SOFT_MUTED)
        assert blocked >= 2

    def test_audit_log_consistent(self, deployed_controller):
        assert deployed_controller.mode is Mode.HEADTALK
        kinds = {event.kind for event in deployed_controller.audit_log}
        assert EventKind.MODE_CHANGE in kinds


class TestStreamingAssistant:
    def test_continuous_stream_end_to_end(self, deployed_controller):
        """Segment a continuous timeline of quiet + utterances and gate
        each through the full spotter-free assistant path."""
        from repro.core import AlwaysOnAssistant
        from repro.core.wakeword import Detection, WakeWordSpotter

        class EverythingIsTheWakeWord(WakeWordSpotter):
            """Spotting is covered by its own tests; pass everything."""

            def detect(self, audio, sample_rate):
                return Detection(True, "computer", 0.0, 1.0)

        assistant = AlwaysOnAssistant(
            pipeline=deployed_controller.pipeline,
            spotter=EverythingIsTheWakeWord(),
        )
        rng = np.random.default_rng(5)
        facing = fresh_captures(0.0)[0]
        backward = fresh_captures(180.0)[0]
        quiet = 0.0005 * rng.standard_normal((facing.n_mics, FS))
        stream = np.concatenate(
            [quiet, facing.channels, quiet, backward.channels, quiet], axis=1
        )
        outcomes = assistant.hear_stream(stream, FS, start_time=0.0)
        assert len(outcomes) == 2
        # First utterance (facing) uploads; the second arrives inside the
        # opened session window, so it is accepted as a session command.
        assert outcomes[0].uploaded


class TestDatasetToDetectorAccuracy:
    def test_cross_session_generalization(self, tiny_dataset):
        """The dataset layer's two sessions must be learnable across."""
        from repro.experiments.common import cross_session_evaluation

        outcome = cross_session_evaluation(tiny_dataset, DEFAULT_DEFINITION)
        assert outcome.mean_accuracy > 0.7

    def test_feature_matrix_is_reusable(self, tiny_dataset):
        """Stored features equal freshly extracted ones for the same audio."""
        from repro.core.features import OrientationFeatureExtractor
        from repro.arrays import default_channel_subset, get_device

        device = get_device("D2")
        array = device.subset(default_channel_subset(device))
        extractor = OrientationFeatureExtractor(array)
        spec = CollectionSpec(
            locations=((1.0, 0.0),), repetitions=1, session=0
        )
        meta, capture = next(iter(collect(spec, 0)))
        fresh = extractor.extract(preprocess(capture))
        assert np.allclose(fresh, tiny_dataset.X[0])
