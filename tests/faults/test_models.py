"""Unit behavior of the hardware-fault models and channel screening."""

import numpy as np

from repro.acoustics import Capture
from repro.core import screen_channels
from repro.faults import (
    BurstNoise,
    ChannelDropout,
    Clipping,
    ClockSkew,
    DeadChannel,
    GainDrift,
)

FS = 48_000


def _speechy(n_channels=4, n_samples=FS // 2, seed=0, amp=0.3):
    rng = np.random.default_rng(seed)
    return amp * rng.standard_normal((n_channels, n_samples))


def _rng():
    return np.random.default_rng(123)


class TestFaultModels:
    def test_dead_channel_zeroed(self):
        out = DeadChannel(channel=1).apply(_speechy(), FS, _rng())
        assert np.all(out[1] == 0.0)
        assert np.any(out[0] != 0.0)

    def test_dead_channel_noise_floor(self):
        out = DeadChannel(channel=0, noise_floor=1e-3).apply(_speechy(), FS, _rng())
        rms = np.sqrt(np.mean(np.square(out[0])))
        assert 0.0 < rms < 1e-2

    def test_dropout_gates_samples(self):
        x = _speechy()
        out = ChannelDropout(channel=2, rate_hz=20.0, mean_ms=40.0).apply(
            x, FS, _rng()
        )
        zeroed = np.sum(out[2] == 0.0) - np.sum(x[2] == 0.0)
        assert zeroed > 0
        assert np.array_equal(out[0], x[0])

    def test_gain_drift_ramps(self):
        x = np.ones((2, FS))
        out = GainDrift(channel=0, start_db=0.0, end_db=-6.0).apply(x, FS, _rng())
        assert out[0, 0] > 0.99
        assert abs(out[0, -1] - 10.0 ** (-6.0 / 20.0)) < 0.01
        assert np.array_equal(out[1], x[1])

    def test_clock_skew_preserves_shape(self):
        x = _speechy()
        out = ClockSkew(channel=1, ppm=500.0).apply(x, FS, _rng())
        assert out.shape == x.shape
        assert not np.array_equal(out[1], x[1])

    def test_clipping_rails(self):
        x = _speechy()
        out = Clipping(level=0.5).apply(x, FS, _rng())
        rail = 0.5 * np.abs(x).max()
        assert np.abs(out).max() <= rail + 1e-12

    def test_burst_noise_adds_energy(self):
        x = _speechy()
        out = BurstNoise(snr_db=0.0, rate_hz=10.0, mean_ms=30.0).apply(x, FS, _rng())
        assert out.shape == x.shape
        assert np.sum(np.square(out)) > np.sum(np.square(x))


class TestScreening:
    def test_flags_dead_channel(self):
        x = _speechy()
        x[2] = 0.0
        health = screen_channels(x)
        assert health.dead == (2,)
        assert health.healthy == (0, 1, 3)
        assert health.is_degraded

    def test_flags_clipped_channel(self):
        # The rail test is relative to the capture's own peak, so the
        # saturated channel must be the one defining it (as a shared-ADC
        # rail does).
        x = _speechy()
        x[1] = np.clip(x[1] * 50.0, -2.0, 2.0)
        health = screen_channels(x)
        assert 1 in health.clipped

    def test_flags_non_finite(self):
        x = _speechy()
        x[0, 10] = np.nan
        x[3, 20] = np.inf
        health = screen_channels(x)
        assert health.non_finite == (0, 3)

    def test_healthy_capture_clean(self, forward_capture):
        health = screen_channels(forward_capture.channels)
        assert not health.is_degraded
        assert health.healthy == tuple(range(forward_capture.n_mics))

    def test_silence_not_flagged_dead(self):
        health = screen_channels(np.zeros((4, FS // 4)))
        assert not health.is_degraded

    def test_to_dict_round_trips_json(self):
        import json

        x = _speechy()
        x[0] = 0.0
        health = screen_channels(x)
        payload = json.loads(json.dumps(health.to_dict()))
        assert payload["dead"] == [0]
        assert payload["n_channels"] == 4


class TestFaultThenScreen:
    """The screening thresholds must catch what the fault models emit."""

    def test_dead_channel_detected(self):
        out = DeadChannel(channel=1).apply(_speechy(), FS, _rng())
        assert 1 in screen_channels(out).dead

    def test_hard_clipping_detected(self):
        capture = Capture(channels=_speechy(), sample_rate=FS)
        from repro.faults import FaultScenario

        scenario = FaultScenario(name="clip", faults=(Clipping(level=0.2),), seed=0)
        assert screen_channels(scenario.apply(capture).channels).clipped
