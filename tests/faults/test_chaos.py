"""Chaos hooks and pool recovery: crashes and transient faults.

The acceptance bar: a killed worker or an injected transient failure
during ``render_captures`` must never change a single output byte —
retry, pool rebuild and the serial fallback all converge to the serial
result.
"""

import numpy as np
import pytest

from repro.datasets.collection import render_tasks
from repro.faults import (
    TransientWorkerFault,
    chaos_unit,
    maybe_fail,
    set_fault_scenario,
    set_faults_enabled,
)
from repro.runtime import (
    RenderDispatchError,
    render_captures,
    retry_policy,
    task_key,
)
from tests.runtime.test_runtime import SPEC


@pytest.fixture(autouse=True)
def _clean_fault_state():
    yield
    set_faults_enabled(False)
    set_fault_scenario(None)


@pytest.fixture()
def tasks():
    return [task for _, task in render_tasks(SPEC)]


@pytest.fixture()
def serial(tasks):
    return render_captures(tasks, workers=1)


class TestChaosHooks:
    def test_chaos_unit_deterministic(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS_CHAOS_SEED", "42")
        assert chaos_unit("k1", "transient") == chaos_unit("k1", "transient")
        assert chaos_unit("k1", "transient") != chaos_unit("k1", "crash")
        assert 0.0 <= chaos_unit("k2", "crash") < 1.0

    def test_seed_shifts_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS_CHAOS_SEED", "0")
        a = chaos_unit("key", "transient")
        monkeypatch.setenv("REPRO_FAULTS_CHAOS_SEED", "1")
        assert chaos_unit("key", "transient") != a

    def test_maybe_fail_first_attempt_only(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS_TRANSIENT_RATE", "1.0")
        set_faults_enabled(True)
        with pytest.raises(TransientWorkerFault):
            maybe_fail("some-task", attempt=0)
        maybe_fail("some-task", attempt=1)  # retry must succeed

    def test_maybe_fail_disarmed_without_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS_TRANSIENT_RATE", "1.0")
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        set_faults_enabled(False)
        maybe_fail("some-task", attempt=0)

    def test_task_key_stable(self, tasks):
        assert task_key(tasks[0]) == task_key(tasks[0])
        assert task_key(tasks[0]) != task_key(tasks[1])


class TestPoolRecovery:
    def test_transient_faults_absorbed(self, monkeypatch, tasks, serial):
        monkeypatch.setenv("REPRO_FAULTS", "1")
        monkeypatch.setenv("REPRO_FAULTS_TRANSIENT_RATE", "1.0")
        pooled = render_captures(tasks, workers=2)
        for s, p in zip(serial, pooled):
            assert np.array_equal(s.channels, p.channels)

    def test_worker_crash_rebuild(self, monkeypatch, tasks, serial):
        monkeypatch.setenv("REPRO_FAULTS", "1")
        monkeypatch.setenv("REPRO_FAULTS_CRASH_RATE", "1.0")
        pooled = render_captures(tasks, workers=2)
        for s, p in zip(serial, pooled):
            assert np.array_equal(s.channels, p.channels)

    def test_serial_fallback_past_rebuild_budget(self, monkeypatch, tasks, serial):
        monkeypatch.setenv("REPRO_FAULTS", "1")
        monkeypatch.setenv("REPRO_FAULTS_CRASH_RATE", "1.0")
        monkeypatch.setenv("REPRO_RENDER_POOL_REBUILDS", "0")
        pooled = render_captures(tasks, workers=2)
        for s, p in zip(serial, pooled):
            assert np.array_equal(s.channels, p.channels)

    def test_exhausted_retries_raise_typed_error(self, monkeypatch, tasks):
        monkeypatch.setenv("REPRO_FAULTS", "1")
        monkeypatch.setenv("REPRO_FAULTS_TRANSIENT_RATE", "1.0")
        monkeypatch.setenv("REPRO_RENDER_RETRIES", "0")
        with pytest.raises(RenderDispatchError, match="failed after"):
            render_captures(tasks, workers=2, chunksize=1)


class TestRetryPolicyEnv:
    def test_defaults(self):
        policy = retry_policy()
        assert policy.retries == 2
        assert policy.timeout_s is None
        assert policy.pool_rebuilds == 1

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_RENDER_RETRIES", "5")
        monkeypatch.setenv("REPRO_RENDER_TIMEOUT_S", "2.5")
        monkeypatch.setenv("REPRO_RENDER_POOL_REBUILDS", "3")
        policy = retry_policy()
        assert policy.retries == 5
        assert policy.timeout_s == 2.5
        assert policy.pool_rebuilds == 3

    def test_zero_timeout_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_RENDER_TIMEOUT_S", "0")
        assert retry_policy().timeout_s is None

    def test_malformed_warns_and_defaults(self, monkeypatch):
        from repro.runtime import batch

        monkeypatch.setenv("REPRO_RENDER_RETRIES", "many")
        monkeypatch.setattr(batch, "_WARNED_BAD_ENV", set())
        with pytest.warns(RuntimeWarning, match="REPRO_RENDER_RETRIES"):
            policy = retry_policy()
        assert policy.retries == 2

    def test_backoff_capped(self):
        from repro.runtime import RetryPolicy

        policy = RetryPolicy(backoff_s=0.1, backoff_cap_s=0.3)
        assert policy.backoff_for(0) == pytest.approx(0.1)
        assert policy.backoff_for(10) == pytest.approx(0.3)
