"""Determinism properties of fault injection and its env plumbing.

The layer's contract: corruption is a pure function of (scenario,
capture content) — identical in any process, in any order, on the
serial and the pool path alike.
"""

import numpy as np
import pytest

from repro.acoustics import Capture
from repro.datasets.collection import render_tasks
from repro.faults import (
    FaultScenario,
    PRESET_NAMES,
    capture_fault_key,
    injected,
    preset_scenario,
    scenario_from_env,
    set_fault_scenario,
    set_faults_enabled,
)
from repro.faults.control import active_scenario
from repro.runtime import render_captures
from tests.runtime.test_runtime import SPEC

FS = 48_000


def _capture(seed=0):
    rng = np.random.default_rng(seed)
    return Capture(channels=0.2 * rng.standard_normal((4, FS // 3)), sample_rate=FS)


class TestScenarioDeterminism:
    @pytest.mark.parametrize("name", sorted(PRESET_NAMES))
    def test_same_scenario_same_bytes(self, name):
        scenario = preset_scenario(name, seed=7)
        capture = _capture()
        first = scenario.apply(capture)
        second = scenario.apply(capture)
        assert np.array_equal(first.channels, second.channels)

    def test_order_independent(self):
        scenario = preset_scenario("kitchen-sink", seed=3)
        captures = [_capture(s) for s in range(4)]
        forward = [scenario.apply(c).channels for c in captures]
        backward = [scenario.apply(c).channels for c in reversed(captures)]
        for a, b in zip(forward, reversed(backward)):
            assert np.array_equal(a, b)

    def test_seed_changes_stream(self):
        capture = _capture()
        a = preset_scenario("burst-noise", seed=0).apply(capture)
        b = preset_scenario("burst-noise", seed=1).apply(capture)
        assert not np.array_equal(a.channels, b.channels)

    def test_content_keyed_not_identity_keyed(self):
        scenario = preset_scenario("burst-noise", seed=0)
        capture = _capture()
        clone = Capture(channels=capture.channels.copy(), sample_rate=FS)
        assert capture_fault_key(capture) == capture_fault_key(clone)
        assert np.array_equal(
            scenario.apply(capture).channels, scenario.apply(clone).channels
        )

    def test_sample_rate_in_key(self):
        capture = _capture()
        other = Capture(channels=capture.channels, sample_rate=FS // 2)
        assert capture_fault_key(capture) != capture_fault_key(other)

    def test_preserves_shape_and_rate(self):
        capture = _capture()
        for name in sorted(PRESET_NAMES):
            out = preset_scenario(name).apply(capture)
            assert out.channels.shape == capture.channels.shape
            assert out.sample_rate == capture.sample_rate


class TestSerialPoolIdentity:
    def test_faulted_render_identical_serial_vs_pool(self):
        tasks = [task for _, task in render_tasks(SPEC)]
        with injected(preset_scenario("kitchen-sink", seed=5)):
            serial = render_captures(tasks, workers=1)
            pooled = render_captures(tasks, workers=2)
        clean = render_captures(tasks, workers=1)
        for s, p in zip(serial, pooled):
            assert np.array_equal(s.channels, p.channels)
        assert not np.array_equal(serial[0].channels, clean[0].channels)

    def test_task_scenario_wins_over_ambient(self):
        from dataclasses import replace

        task = next(task for _, task in render_tasks(SPEC))
        own = preset_scenario("dead-channel", seed=1)
        pinned = replace(task, faults=own)
        with injected(preset_scenario("clipping", seed=2)):
            ambient = render_captures([task], workers=1)[0]
            kept = render_captures([pinned], workers=1)[0]
        direct = own.apply(render_captures([task], workers=1)[0])
        assert not np.array_equal(kept.channels, ambient.channels)
        assert np.array_equal(kept.channels[0], np.zeros_like(kept.channels[0]))
        assert kept.channels.shape == direct.channels.shape


class TestControlPlumbing:
    @pytest.fixture(autouse=True)
    def _restore(self):
        yield
        set_faults_enabled(False)
        set_fault_scenario(None)

    def test_disabled_by_default(self):
        assert active_scenario() is None

    def test_injected_restores_state(self):
        scenario = preset_scenario("dead-channel")
        with injected(scenario):
            assert active_scenario() is scenario
        assert active_scenario() is None

    def test_injected_none_arms_without_scenario(self):
        from repro.faults import faults_enabled

        with injected(None):
            assert faults_enabled()
            assert active_scenario() is None

    def test_env_scenario(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS_SCENARIO", "gain-drift")
        monkeypatch.setenv("REPRO_FAULTS_SEVERITY", "2.0")
        monkeypatch.setenv("REPRO_FAULTS_SEED", "9")
        scenario = scenario_from_env()
        assert isinstance(scenario, FaultScenario)
        assert scenario.name == "gain-drift@2"
        assert scenario.seed == 9
        set_faults_enabled(True)
        assert active_scenario() == scenario

    def test_unknown_env_scenario_warns_and_injects_nothing(self, monkeypatch):
        from repro.obs import control

        monkeypatch.setenv("REPRO_FAULTS_SCENARIO", "frobnicate")
        monkeypatch.setattr(control, "_WARNED", set())
        with pytest.warns(RuntimeWarning, match="frobnicate"):
            assert scenario_from_env() is None
        # Second call is silent (warn-once).
        assert scenario_from_env() is None

    def test_malformed_severity_warns_and_defaults(self, monkeypatch):
        from repro.obs import control

        monkeypatch.setenv("REPRO_FAULTS_SCENARIO", "clipping")
        monkeypatch.setenv("REPRO_FAULTS_SEVERITY", "lots")
        monkeypatch.setattr(control, "_WARNED", set())
        with pytest.warns(RuntimeWarning, match="REPRO_FAULTS_SEVERITY"):
            scenario = scenario_from_env()
        assert scenario.name == "clipping@1"
