"""Fail-closed pipeline behavior under degraded hardware.

The gate's contract when a capture is corrupt: never raise, decide from
the surviving microphone pairs when at least one healthy pair remains,
and reject as ``degraded-input`` — with the health report in the
decision — when nothing trustworthy survives.
"""

import numpy as np
import pytest

from repro.acoustics import Capture
from repro.arrays.devices import default_channel_subset, get_device
from repro.core import (
    ACCEPT,
    FACING,
    HeadTalkPipeline,
    LivenessDetector,
    NON_FACING,
    OrientationDetector,
    REJECT_DEGRADED_INPUT,
    REJECT_NON_FACING,
    REJECT_NO_SPEECH,
)
from repro.core.features import OrientationFeatureExtractor
from repro.faults import DeadChannel, FaultScenario

FS = 48_000
VALID_REASONS = {ACCEPT, REJECT_NON_FACING, REJECT_NO_SPEECH, REJECT_DEGRADED_INPUT}


def _pipeline_for(device_name: str) -> HeadTalkPipeline:
    """A pipeline whose detector has the right dimensionality.

    Decision *quality* is irrelevant here (these inputs are synthetic
    noise); the contract under test is that nothing raises and every
    reason is typed — so a detector trained on random features of the
    correct width is enough, and cheap for all three geometries.
    """
    device = get_device(device_name)
    array = device.subset(default_channel_subset(device))
    extractor = OrientationFeatureExtractor(array)
    rng = np.random.default_rng(0)
    X = rng.standard_normal((24, extractor.n_features))
    y = np.array([FACING, NON_FACING] * 12)
    detector = OrientationDetector().fit(X, y)
    return HeadTalkPipeline(
        array=array, liveness=LivenessDetector(), orientation=detector
    )


def _noisy_capture(n_channels: int, seed: int = 0) -> Capture:
    rng = np.random.default_rng(seed)
    return Capture(
        channels=0.2 * rng.standard_normal((n_channels, FS // 3)), sample_rate=FS
    )


class TestDeadChannelPerGeometry:
    @pytest.mark.parametrize("device_name", ["D1", "D2", "D3"])
    def test_batch_completes_with_valid_reasons(self, device_name):
        pipeline = _pipeline_for(device_name)
        n = pipeline.array.n_mics
        scenario = FaultScenario(
            name="dead0", faults=(DeadChannel(channel=0),), seed=0
        )
        captures = [
            scenario.apply(_noisy_capture(n, seed=s)) for s in range(3)
        ]
        evaluation = pipeline.evaluate_batch(captures, check_liveness=False)
        assert len(evaluation) == len(captures)
        for decision in evaluation:
            assert decision.reason in VALID_REASONS
            assert decision.degraded
            assert decision.health is not None
            assert 0 in decision.health.dead

    @pytest.mark.parametrize("device_name", ["D1", "D2", "D3"])
    def test_batch_matches_serial_fingerprints(self, device_name):
        pipeline = _pipeline_for(device_name)
        n = pipeline.array.n_mics
        scenario = FaultScenario(
            name="dead0", faults=(DeadChannel(channel=0),), seed=0
        )
        captures = [_noisy_capture(n, seed=9)] + [
            scenario.apply(_noisy_capture(n, seed=s)) for s in range(3)
        ]
        batch = pipeline.evaluate_batch(captures, check_liveness=False)
        for capture, decision in zip(captures, batch):
            one = pipeline.evaluate(capture, check_liveness=False)
            assert one.fingerprint() == decision.fingerprint()


class TestFailClosed:
    @pytest.fixture(scope="class")
    def pipeline(self):
        return _pipeline_for("D3")

    def test_no_healthy_pair_rejects(self, pipeline):
        n = pipeline.array.n_mics
        capture = _noisy_capture(n)
        channels = capture.channels.copy()
        channels[1:] = 0.0  # one survivor: no pair left
        decision = pipeline.evaluate(
            Capture(channels=channels, sample_rate=FS), check_liveness=False
        )
        assert not decision.accepted
        assert decision.reason == REJECT_DEGRADED_INPUT
        assert decision.detail.startswith("no-healthy-pair")
        assert decision.health is not None

    def test_one_dead_channel_still_decided(self, pipeline):
        n = pipeline.array.n_mics
        channels = _noisy_capture(n).channels.copy()
        channels[0] = 0.0
        decision = pipeline.evaluate(
            Capture(channels=channels, sample_rate=FS), check_liveness=False
        )
        assert decision.degraded
        assert decision.reason in (ACCEPT, REJECT_NON_FACING)

    def test_nan_channel_masked_not_fatal(self, pipeline):
        n = pipeline.array.n_mics
        channels = _noisy_capture(n).channels.copy()
        channels[1, ::7] = np.nan
        decision = pipeline.evaluate(
            Capture(channels=channels, sample_rate=FS), check_liveness=False
        )
        assert decision.reason in VALID_REASONS
        assert decision.degraded
        assert 1 in decision.health.non_finite

    def test_non_finite_features_fail_closed(self, pipeline, monkeypatch):
        capture = _noisy_capture(pipeline.array.n_mics)

        # The extractor dataclass is frozen, so patch at class level: any
        # NaN that leaks from extraction must stop at the gate boundary.
        monkeypatch.setattr(
            OrientationFeatureExtractor,
            "extract",
            lambda self, audio: np.full(self.n_features, np.nan),
        )
        monkeypatch.setattr(
            OrientationFeatureExtractor,
            "extract_batch",
            lambda self, audios: np.stack(
                [np.full(self.n_features, np.nan) for _ in audios]
            ),
        )
        one = pipeline.evaluate(capture, check_liveness=False)
        assert not one.accepted
        assert one.reason == REJECT_DEGRADED_INPUT
        assert one.detail.startswith("feature-error:")
        many = pipeline.evaluate_batch([capture], check_liveness=False)
        assert many.decisions[0].fingerprint() == one.fingerprint()

    def test_all_dead_is_no_speech_not_crash(self, pipeline):
        silent = Capture(
            channels=np.zeros((pipeline.array.n_mics, FS // 3)), sample_rate=FS
        )
        decision = pipeline.evaluate(silent, check_liveness=False)
        assert decision.reason == REJECT_NO_SPEECH

    def test_empty_capture_rejected_typed(self, pipeline):
        empty = Capture(
            channels=np.zeros((pipeline.array.n_mics, 0)), sample_rate=FS
        )
        decision = pipeline.evaluate(empty, check_liveness=False)
        assert decision.reason == REJECT_DEGRADED_INPUT
        assert decision.detail == "empty-capture"


class TestMaskedFeatureExtraction:
    def test_all_healthy_mask_is_identity(self, extractor, forward_capture):
        from repro.core import preprocess

        audio = preprocess(forward_capture)
        full = extractor.extract(audio)
        masked = extractor.extract_masked(audio, list(range(forward_capture.n_mics)))
        assert np.array_equal(full, masked)

    def test_masked_rows_zeroed(self, extractor, forward_capture):
        from repro.core import preprocess

        audio = preprocess(forward_capture)
        masked = extractor.extract_masked(audio, [1, 2, 3])
        window = 2 * extractor.max_lag + 1
        gcc = masked[: len(extractor.pairs) * window].reshape(
            len(extractor.pairs), window
        )
        for row, (i, j) in enumerate(extractor.pairs):
            if 0 in (i, j):
                assert np.all(gcc[row] == 0.0)
            else:
                assert np.any(gcc[row] != 0.0)
        assert np.all(np.isfinite(masked))

    def test_too_few_healthy_raises(self, extractor, forward_capture):
        from repro.core import preprocess

        audio = preprocess(forward_capture)
        with pytest.raises(ValueError, match="healthy"):
            extractor.extract_masked(audio, [2])
