"""Tests for SUS scoring."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.userstudy import (
    ABOVE_AVERAGE_THRESHOLD,
    SUS_ITEMS,
    responses_for_target,
    summarize,
    sus_score,
    sus_scores,
)


class TestScoring:
    def test_ten_items(self):
        assert len(SUS_ITEMS) == 10

    def test_best_possible(self):
        """All-5 on odd (positive) items, all-1 on even (negative) = 100."""
        responses = np.array([5, 1, 5, 1, 5, 1, 5, 1, 5, 1])
        assert sus_score(responses) == 100.0

    def test_worst_possible(self):
        responses = np.array([1, 5, 1, 5, 1, 5, 1, 5, 1, 5])
        assert sus_score(responses) == 0.0

    def test_neutral(self):
        assert sus_score(np.full(10, 3)) == 50.0

    def test_known_textbook_example(self):
        # Classic worked example: alternating 4/2 -> 75.
        responses = np.array([4, 2, 4, 2, 4, 2, 4, 2, 4, 2])
        assert sus_score(responses) == 75.0

    def test_validation(self):
        with pytest.raises(ValueError):
            sus_score(np.full(9, 3))
        with pytest.raises(ValueError):
            sus_score(np.full(10, 6))

    def test_matrix_scoring(self):
        matrix = np.stack([np.full(10, 3), np.array([5, 1] * 5)])
        assert sus_scores(matrix).tolist() == [50.0, 100.0]

    @given(st.lists(st.integers(1, 5), min_size=10, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_score_always_in_range(self, responses):
        score = sus_score(np.asarray(responses))
        assert 0.0 <= score <= 100.0
        assert score % 2.5 == 0.0


class TestSummary:
    def test_confidence_interval(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(75, 10, 40)
        summary = summarize(scores)
        assert summary.mean == pytest.approx(scores.mean())
        assert summary.half_width > 0
        assert summary.n == 40

    def test_above_average_flag(self):
        high = summarize(np.full(10, 80.0) + np.arange(10) * 0.1)
        low = summarize(np.full(10, 50.0) + np.arange(10) * 0.1)
        assert high.above_average
        assert not low.above_average
        assert ABOVE_AVERAGE_THRESHOLD == 68.0

    def test_validation(self):
        with pytest.raises(ValueError):
            summarize(np.array([70.0]))
        with pytest.raises(ValueError):
            summarize(np.array([70.0, 80.0]), confidence=1.5)

    def test_str_format(self):
        text = str(summarize(np.array([70.0, 80.0, 75.0])))
        assert "95% CI" in text


class TestSynthesis:
    def test_targets_roughly_hit(self):
        rng = np.random.default_rng(1)
        responses = responses_for_target(77.0, 12.0, 200, rng)
        scores = sus_scores(responses)
        assert scores.mean() == pytest.approx(77.0, abs=5.0)

    def test_responses_valid_likert(self):
        rng = np.random.default_rng(2)
        responses = responses_for_target(60.0, 15.0, 30, rng)
        assert np.all((responses >= 1) & (responses <= 5))

    def test_validation(self):
        with pytest.raises(ValueError):
            responses_for_target(150.0, 10.0, 5, np.random.default_rng(0))
