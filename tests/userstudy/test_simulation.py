"""Tests for the simulated interaction study."""

import pytest

from repro.datasets import TINY
from repro.userstudy import (
    BACKWARD_ANGLES,
    FORWARD_ANGLES,
    ParticipantOutcome,
    run_interaction_study,
)
from repro.userstudy.simulation import run


class TestProtocol:
    def test_angle_sets_match_protocol(self):
        assert len(FORWARD_ANGLES) == 5
        assert len(BACKWARD_ANGLES) == 5
        assert all(abs(a) <= 30 for a in FORWARD_ANGLES)
        assert all(abs(a) >= 90 for a in BACKWARD_ANGLES)

    def test_outcome_accuracy(self):
        outcome = ParticipantOutcome(participant="P1", n_trials=10, n_correct=7)
        assert outcome.accuracy == pytest.approx(0.7)

    def test_zero_trials(self):
        assert ParticipantOutcome("P1", 0, 0).accuracy == 0.0


class TestStudy:
    def test_one_participant_runs(self):
        outcomes = run_interaction_study(n_participants=1, scale=TINY)
        assert len(outcomes) == 1
        outcome = outcomes[0]
        assert outcome.n_trials == 30  # 3 locations x 10 angles
        assert 0 <= outcome.n_correct <= outcome.n_trials
        # The pipeline should respond correctly far more often than chance.
        assert outcome.accuracy > 0.6

    def test_full_run_produces_result(self):
        result = run(scale=TINY, n_participants=1)
        metrics = [row["metric"] for row in result.rows]
        assert "SUS HeadTalk" in metrics
        assert "SUS mute button" in metrics
        assert result.summary["headtalk_beats_mute"] in (True, False)
        assert 60 < result.summary["sus_headtalk"] < 95
