"""Tests for the Table V survey data."""

import pytest

from repro.userstudy import N_PARTICIPANTS, SurveyQuestion, TABLE_V, takeaways


class TestSurveyQuestion:
    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            SurveyQuestion("q", ("a", "b"), (1,))

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            SurveyQuestion("q", ("a",), (-1,))

    def test_fraction(self):
        q = SurveyQuestion("q", ("a", "b", "c"), (2, 3, 5))
        assert q.fraction("a") == pytest.approx(0.2)
        assert q.fraction("a", "b") == pytest.approx(0.5)

    def test_fraction_unknown_option(self):
        q = SurveyQuestion("q", ("a",), (1,))
        with pytest.raises(ValueError):
            q.fraction("z")


class TestTableV:
    def test_five_questions(self):
        assert len(TABLE_V) == 5

    def test_each_question_has_20_responses(self):
        for question in TABLE_V:
            assert question.n_responses == N_PARTICIPANTS

    def test_ownership_tallies(self):
        ownership = TABLE_V[0]
        assert ownership.counts == (5, 12, 2, 1)

    def test_participant_comments_present(self):
        from repro.userstudy import PARTICIPANT_COMMENTS

        assert set(PARTICIPANT_COMMENTS) == {"P1", "P8", "P9", "P20"}
        assert "mute button" in PARTICIPANT_COMMENTS["P20"]

    def test_paper_takeaways(self):
        marks = takeaways()
        # 10/15 owners face the VA often or very often.
        assert marks["owners_who_face_va_pct"] == pytest.approx(66.67, abs=0.1)
        # 19/20 found it easy.
        assert marks["easy_to_use_pct"] == pytest.approx(95.0)
        # 14/20 would deploy.
        assert marks["would_deploy_pct"] == pytest.approx(70.0)
        # 14/20 rate it better than existing controls.
        assert marks["better_than_existing_pct"] == pytest.approx(70.0)
