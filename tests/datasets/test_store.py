"""Tests for dataset containers."""

import numpy as np
import pytest

from repro.datasets import LivenessDataset, OrientationDataset, UtteranceMeta


def meta(angle=0.0, session=0, room="lab", **kwargs) -> UtteranceMeta:
    return UtteranceMeta(
        room=room,
        device="D2",
        wake_word="computer",
        angle_deg=angle,
        distance_m=3.0,
        radial_deg=0.0,
        session=session,
        repetition=0,
        **kwargs,
    )


def small_dataset() -> OrientationDataset:
    metas = [
        meta(angle=0.0, session=0),
        meta(angle=90.0, session=0),
        meta(angle=0.0, session=1, room="home"),
        meta(angle=180.0, session=1),
    ]
    X = np.arange(16.0).reshape(4, 4)
    return OrientationDataset(X=X, meta=metas)


class TestUtteranceMeta:
    def test_grid_label(self):
        assert meta().grid_label == "M3"
        assert UtteranceMeta(
            room="lab", device="D2", wake_word="computer", angle_deg=0,
            distance_m=1.0, radial_deg=-15.0, session=0, repetition=0,
        ).grid_label == "L1"

    def test_is_live_human(self):
        assert meta().is_live_human
        assert not meta(source="replay").is_live_human


class TestOrientationDataset:
    def test_alignment_enforced(self):
        with pytest.raises(ValueError, match="metadata"):
            OrientationDataset(X=np.zeros((3, 2)), meta=[meta()])

    def test_field_and_angles(self):
        ds = small_dataset()
        assert ds.angles.tolist() == [0.0, 90.0, 0.0, 180.0]
        assert ds.field("room").tolist() == ["lab", "lab", "home", "lab"]

    def test_unknown_field(self):
        with pytest.raises(ValueError, match="unknown"):
            small_dataset().field("color")

    def test_mask_scalar_and_collection(self):
        ds = small_dataset()
        assert ds.mask(room="lab").sum() == 3
        assert ds.mask(session=[0, 1], room="home").sum() == 1

    def test_subset(self):
        ds = small_dataset()
        sub = ds.subset(session=0)
        assert len(sub) == 2
        assert np.array_equal(sub.X, ds.X[:2])

    def test_split_by(self):
        parts = small_dataset().split_by("room")
        assert set(parts) == {"lab", "home"}
        assert len(parts["home"]) == 1

    def test_concat(self):
        ds = small_dataset()
        combined = ds.concat(ds)
        assert len(combined) == 8

    def test_concat_dim_mismatch(self):
        ds = small_dataset()
        other = OrientationDataset(X=np.zeros((1, 7)), meta=[meta()])
        with pytest.raises(ValueError):
            ds.concat(other)

    def test_session_split(self):
        train, test = small_dataset().session_split(0)
        assert set(train.field("session")) == {0}
        assert set(test.field("session")) == {1}

    def test_session_split_missing_session(self):
        with pytest.raises(ValueError, match="not present"):
            small_dataset().session_split(9)

    def test_session_split_single_session(self):
        ds = small_dataset().subset(session=0)
        with pytest.raises(ValueError, match="single session"):
            ds.session_split(0)

    def test_grid_label_filterable(self):
        ds = small_dataset()
        assert ds.mask(grid_label="M3").sum() == 4


class TestLivenessDataset:
    def make(self, n=10):
        features = [np.zeros((5, 4)) + k for k in range(n)]
        labels = np.array([k % 2 for k in range(n)])
        return LivenessDataset(features=features, labels=labels)

    def test_alignment(self):
        with pytest.raises(ValueError):
            LivenessDataset(features=[np.zeros((2, 2))], labels=np.array([0, 1]))

    def test_take(self):
        ds = self.make()
        sub = ds.take([0, 3])
        assert len(sub) == 2
        assert sub.labels.tolist() == [0, 1]

    def test_split_fractions(self):
        ds = self.make(20)
        parts = ds.split((0.2, 0.2, 0.6), np.random.default_rng(0))
        assert [len(p) for p in parts] == [4, 4, 12]
        assert sum(len(p) for p in parts) == 20

    def test_split_stratified(self):
        ds = self.make(20)
        parts = ds.split((0.5, 0.5), np.random.default_rng(0))
        for part in parts:
            assert np.sum(part.labels == 0) == np.sum(part.labels == 1)

    def test_split_bad_fractions(self):
        with pytest.raises(ValueError):
            self.make().split((0.5, 0.2), np.random.default_rng(0))
