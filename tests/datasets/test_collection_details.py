"""Finer-grained behavior of the collection layer."""

import numpy as np
import pytest

from repro.acoustics import HumanSpeaker
from repro.datasets import (
    CollectionSpec,
    build_session_context,
    collect,
    speaker_profile,
    stable_seed,
)

TINY = dict(locations=((1.0, 0.0),), angles=(0.0,), repetitions=1)


class TestPersonTraits:
    def test_sitting_uses_the_persons_sitting_height(self):
        person = HumanSpeaker.random(
            np.random.default_rng(stable_seed("speaker", 0)), name="user0"
        )
        standing = CollectionSpec(**TINY, posture="standing")
        sitting = CollectionSpec(**TINY, posture="sitting")
        # Heights differ per person; sitting must be lower than standing.
        assert person.sitting_mouth_height < person.standing_mouth_height

        _, cap_standing = next(iter(collect(standing, 0)))
        _, cap_sitting = next(iter(collect(sitting, 0)))
        assert not np.array_equal(cap_standing.channels, cap_sitting.channels)

    def test_users_have_distinct_physical_traits(self):
        people = [
            HumanSpeaker.random(
                np.random.default_rng(stable_seed("speaker", k)), name=f"user{k}"
            )
            for k in range(5)
        ]
        heights = {round(p.standing_mouth_height, 4) for p in people}
        rears = {round(p.directivity.rear_floor, 5) for p in people}
        assert len(heights) >= 4
        assert len(rears) >= 4

    def test_profile_matches_speaker_profile_helper(self):
        """HumanSpeaker.random on the speaker seed stream must agree
        with the standalone speaker_profile helper."""
        person = HumanSpeaker.random(
            np.random.default_rng(stable_seed("speaker", 7)), name="user7"
        )
        assert person.profile == speaker_profile(7)


class TestSessionDrift:
    def test_home_drifts_more_than_lab(self):
        lab_day = build_session_context(CollectionSpec(room="lab"), 0)
        home_day = build_session_context(CollectionSpec(room="home"), 0)
        assert home_day.drift > lab_day.drift

    def test_timeframe_scales_drift(self):
        day = build_session_context(CollectionSpec(timeframe="day"), 0)
        week = build_session_context(CollectionSpec(timeframe="week"), 0)
        month = build_session_context(CollectionSpec(timeframe="month"), 0)
        assert day.drift < week.drift < month.drift

    def test_device_rotation_drifts(self):
        month = build_session_context(CollectionSpec(timeframe="month"), 0)
        assert month.placement.rotation_deg != 0.0

    def test_aim_error_scale_adds_bias(self):
        careful = build_session_context(CollectionSpec(aim_error_scale=1.0), 0)
        loose = build_session_context(CollectionSpec(aim_error_scale=2.5), 0)
        assert careful.angle_bias_deg == pytest.approx(0.0)
        assert loose.angle_bias_deg != 0.0
        assert loose.angle_error_deg > careful.angle_error_deg


class TestOcclusionSpecs:
    def test_full_block_changes_capture(self):
        open_spec = CollectionSpec(**TINY)
        blocked = CollectionSpec(**TINY, occlusion="full")
        _, cap_open = next(iter(collect(open_spec, 0)))
        _, cap_blocked = next(iter(collect(blocked, 0)))
        # The blocked capture loses direct-path energy.
        assert np.mean(cap_blocked.channels**2) < np.mean(cap_open.channels**2)
