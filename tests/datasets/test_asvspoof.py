"""Tests for the synthetic ASVspoof-like liveness corpus."""

import numpy as np
import pytest

from repro.core.liveness import LIVE_HUMAN, MECHANICAL
from repro.datasets import make_asvspoof_like


@pytest.fixture(scope="module")
def corpus():
    return make_asvspoof_like(n_utterances=12, seed=0)


class TestCorpus:
    def test_size_and_balance(self, corpus):
        assert len(corpus) == 12
        assert np.sum(corpus.labels == LIVE_HUMAN) == 6
        assert np.sum(corpus.labels == MECHANICAL) == 6

    def test_features_shape(self, corpus):
        assert all(f.ndim == 2 and f.shape[1] == 40 for f in corpus.features)

    def test_metadata_source_matches_label(self, corpus):
        for label, meta in zip(corpus.labels, corpus.meta):
            assert (label == LIVE_HUMAN) == (meta.source == "human")

    def test_speakers_are_distinct(self, corpus):
        speakers = {m.speaker for m in corpus.meta}
        assert len(speakers) == len(corpus)

    def test_deterministic(self):
        a = make_asvspoof_like(n_utterances=4, seed=3)
        b = make_asvspoof_like(n_utterances=4, seed=3)
        for fa, fb in zip(a.features, b.features):
            assert np.array_equal(fa, fb)

    def test_seed_changes_corpus(self):
        a = make_asvspoof_like(n_utterances=4, seed=1)
        b = make_asvspoof_like(n_utterances=4, seed=2)
        assert not np.array_equal(a.features[0], b.features[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            make_asvspoof_like(n_utterances=1)
