"""Tests for dataset .npz persistence."""

import numpy as np
import pytest

from repro.datasets import LivenessDataset, OrientationDataset, UtteranceMeta
from repro.datasets.export import (
    load_liveness_dataset,
    load_orientation_dataset,
    save_liveness_dataset,
    save_orientation_dataset,
)


def meta(k: int) -> UtteranceMeta:
    return UtteranceMeta(
        room="lab",
        device="D2",
        wake_word="computer",
        angle_deg=float(15 * k),
        distance_m=1.0 + k,
        radial_deg=0.0,
        session=k % 2,
        repetition=k,
        speaker=f"user{k}",
    )


class TestOrientationRoundTrip:
    def test_exact_round_trip(self, tmp_path):
        dataset = OrientationDataset(
            X=np.random.default_rng(0).standard_normal((4, 7)),
            meta=[meta(k) for k in range(4)],
            extractor_name="headtalk",
        )
        path = tmp_path / "ds.npz"
        save_orientation_dataset(dataset, path)
        loaded = load_orientation_dataset(path)
        assert np.array_equal(loaded.X, dataset.X)
        assert loaded.extractor_name == "headtalk"
        assert loaded.meta == dataset.meta

    def test_loaded_dataset_filters(self, tmp_path):
        dataset = OrientationDataset(
            X=np.zeros((4, 3)), meta=[meta(k) for k in range(4)]
        )
        path = tmp_path / "ds.npz"
        save_orientation_dataset(dataset, path)
        loaded = load_orientation_dataset(path)
        assert len(loaded.subset(session=0)) == 2
        train, test = loaded.session_split(0)
        assert len(train) + len(test) == 4

    def test_real_tiny_dataset_round_trips(self, tmp_path, tiny_dataset):
        path = tmp_path / "tiny.npz"
        save_orientation_dataset(tiny_dataset, path)
        loaded = load_orientation_dataset(path)
        assert np.allclose(loaded.X, tiny_dataset.X)
        assert loaded.meta == tiny_dataset.meta


class TestLivenessRoundTrip:
    def make(self):
        rng = np.random.default_rng(1)
        features = [rng.standard_normal((rng.integers(5, 20), 8)) for _ in range(5)]
        labels = np.array([0, 1, 0, 1, 1])
        return LivenessDataset(features=features, labels=labels, meta=[meta(k) for k in range(5)])

    def test_round_trip(self, tmp_path):
        dataset = self.make()
        path = tmp_path / "live.npz"
        save_liveness_dataset(dataset, path)
        loaded = load_liveness_dataset(path)
        assert np.array_equal(loaded.labels, dataset.labels)
        for a, b in zip(loaded.features, dataset.features):
            assert np.array_equal(a, b)
        assert loaded.meta == dataset.meta

    def test_empty_rejected(self, tmp_path):
        empty = LivenessDataset(features=[], labels=np.zeros(0, dtype=int))
        with pytest.raises(ValueError, match="empty"):
            save_liveness_dataset(empty, tmp_path / "x.npz")


class TestGuards:
    def test_wrong_kind(self, tmp_path):
        dataset = OrientationDataset(X=np.zeros((1, 2)), meta=[meta(0)])
        path = tmp_path / "ds.npz"
        save_orientation_dataset(dataset, path)
        with pytest.raises(ValueError, match="orientation dataset"):
            load_liveness_dataset(path)

    def test_foreign_file(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ValueError, match="not a repro dataset"):
            load_orientation_dataset(path)
