"""Tests for the simulated collection protocol."""

import numpy as np
import pytest

from repro.datasets import (
    ALL_LOCATIONS,
    CollectionSpec,
    DEFAULT_LOCATIONS,
    build_session_context,
    collect,
    speaker_profile,
    stable_seed,
)


TINY_SPEC = CollectionSpec(
    locations=((1.0, 0.0),), angles=(0.0, 180.0), repetitions=1
)


class TestSpec:
    def test_utterance_count(self):
        spec = CollectionSpec(locations=ALL_LOCATIONS, repetitions=2)
        assert spec.n_utterances == 9 * 14 * 2

    def test_default_locations_are_m_column(self):
        assert DEFAULT_LOCATIONS == ((1.0, 0.0), (3.0, 0.0), (5.0, 0.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            CollectionSpec(repetitions=0)
        with pytest.raises(ValueError):
            CollectionSpec(source="alien")
        with pytest.raises(ValueError):
            CollectionSpec(posture="lying")
        with pytest.raises(ValueError):
            CollectionSpec(timeframe="year")
        with pytest.raises(ValueError):
            CollectionSpec(occlusion="wall")
        with pytest.raises(ValueError):
            CollectionSpec(replay_model="boombox")


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("a", 1) == stable_seed("a", 1)

    def test_sensitive_to_parts(self):
        assert stable_seed("a", 1) != stable_seed("a", 2)
        assert stable_seed("a") != stable_seed("b")


class TestSpeakerProfile:
    def test_stable_per_seed(self):
        assert speaker_profile(3) == speaker_profile(3)
        assert speaker_profile(3) != speaker_profile(4)


class TestSessionContext:
    def test_deterministic(self):
        spec = CollectionSpec(session=1)
        a = build_session_context(spec, 0)
        b = build_session_context(spec, 0)
        assert a.room.material.absorption == b.room.material.absorption
        assert a.placement.position_xy == b.placement.position_xy

    def test_sessions_differ(self):
        a = build_session_context(CollectionSpec(session=0), 0)
        b = build_session_context(CollectionSpec(session=1), 0)
        assert a.room.material.absorption != b.room.material.absorption

    def test_timeframe_drifts_more(self):
        day = build_session_context(CollectionSpec(timeframe="day"), 0)
        month = build_session_context(CollectionSpec(timeframe="month"), 0)
        nominal = 0.74  # placement A height
        assert abs(month.placement.height - nominal) != abs(day.placement.height - nominal)

    def test_home_uses_shelf_placement(self):
        context = build_session_context(CollectionSpec(room="home"), 0)
        assert abs(context.placement.height - 0.83) < 0.1

    def test_raised_occlusion_raises_device(self):
        normal = build_session_context(CollectionSpec(), 0)
        raised = build_session_context(CollectionSpec(occlusion="raised"), 0)
        assert raised.placement.height > normal.placement.height + 0.1


class TestCollect:
    def test_yield_count_and_metadata(self):
        items = list(collect(TINY_SPEC, 0))
        assert len(items) == 2
        metas = [m for m, _ in items]
        assert [m.angle_deg for m in metas] == [0.0, 180.0]
        assert all(m.room == "lab" and m.device == "D2" for m in metas)

    def test_capture_shape(self):
        _, capture = next(iter(collect(TINY_SPEC, 0)))
        assert capture.n_mics == 4  # default D2 subset
        assert capture.sample_rate == 48_000

    def test_deterministic(self):
        a = [c.channels for _, c in collect(TINY_SPEC, 0)]
        b = [c.channels for _, c in collect(TINY_SPEC, 0)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_seed_changes_audio(self):
        a = next(iter(collect(TINY_SPEC, 0)))[1].channels
        b = next(iter(collect(TINY_SPEC, 1)))[1].channels
        assert not np.array_equal(a, b)

    def test_sessions_change_audio(self):
        spec0 = CollectionSpec(**{**TINY_SPEC.__dict__, "session": 0})
        spec1 = CollectionSpec(**{**TINY_SPEC.__dict__, "session": 1})
        a = next(iter(collect(spec0, 0)))[1].channels
        b = next(iter(collect(spec1, 0)))[1].channels
        assert not np.array_equal(a, b)

    def test_replay_source_flagged(self):
        spec = CollectionSpec(**{**TINY_SPEC.__dict__, "source": "replay"})
        meta, _ = next(iter(collect(spec, 0)))
        assert meta.source == "replay"
        assert not meta.is_live_human

    def test_channel_override(self):
        spec = CollectionSpec(**{**TINY_SPEC.__dict__, "channels": (0, 1, 2, 3, 4, 5)})
        _, capture = next(iter(collect(spec, 0)))
        assert capture.n_mics == 6

    def test_forward_louder_than_backward(self):
        items = list(collect(TINY_SPEC, 0))
        rms = [float(np.sqrt(np.mean(c.channels**2))) for _, c in items]
        assert rms[0] > rms[1]  # 0 deg vs 180 deg
