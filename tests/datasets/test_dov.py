"""Tests for the DoV-like multi-user corpus."""

import numpy as np
import pytest

from repro.datasets import DOV_ANGLES, TINY, dov_session_specs, dov_specs, make_dov_like


class TestSpecs:
    def test_angle_grid(self):
        assert len(DOV_ANGLES) == 8
        assert 15.0 not in DOV_ANGLES and -30.0 not in DOV_ANGLES

    def test_one_spec_per_user(self):
        specs = dov_specs(TINY, n_users=5)
        assert len(specs) == 5
        assert len({s.speaker_seed for s in specs}) == 5

    def test_users_distinct_from_dataset1_user(self):
        assert all(s.speaker_seed >= 100 for s in dov_specs(TINY, 3))

    def test_session_override(self):
        specs = dov_session_specs(1, TINY, 3)
        assert all(s.session == 1 for s in specs)

    def test_validation(self):
        with pytest.raises(ValueError):
            dov_specs(TINY, n_users=1)


class TestBuild:
    def test_small_build(self):
        ds = make_dov_like(scale=TINY, n_users=2, seed=0)
        # 2 users x 1 location x 8 angles x 1 rep
        assert len(ds) == 16
        assert set(ds.field("speaker")) == {"user100", "user101"}

    def test_imbalance_matches_protocol(self):
        """3 facing angles (0, +-45) vs 5 non-facing per user."""
        ds = make_dov_like(scale=TINY, n_users=2, seed=0)
        facing = np.isin(ds.angles, [0.0, 45.0, -45.0])
        assert facing.sum() == 6
        assert (~facing).sum() == 10
