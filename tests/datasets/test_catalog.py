"""Tests for the Table II dataset builders."""

import numpy as np
import pytest

from repro.core.liveness import LIVE_HUMAN, MECHANICAL
from repro.datasets import (
    BENCH,
    PAPER,
    Scale,
    border_angle_specs,
    build_liveness_dataset,
    build_orientation_dataset,
    clear_cache,
    dataset1_specs,
    dataset2_specs,
    dataset3_specs,
    dataset4_specs,
    dataset5_specs,
    dataset6_specs,
    dataset7_specs,
    placement_specs,
)
from repro.datasets.collection import CollectionSpec


def spec_total(specs) -> int:
    return sum(spec.n_utterances for spec in specs)


class TestPaperScaleCounts:
    """The PAPER scale must reproduce the sample counts of Table II."""

    def test_dataset1_is_9072(self):
        assert spec_total(dataset1_specs(PAPER)) == 9072

    def test_dataset2_is_1008(self):
        assert spec_total(dataset2_specs(PAPER)) == 1008

    def test_dataset3_is_336(self):
        assert spec_total(dataset3_specs(PAPER)) == 336

    def test_dataset4_is_168(self):
        assert spec_total(dataset4_specs(PAPER)) == 168

    def test_dataset5_is_84(self):
        assert spec_total(dataset5_specs(PAPER)) == 84

    def test_dataset6_is_168(self):
        assert spec_total(dataset6_specs(PAPER)) == 168

    def test_dataset7_is_252(self):
        assert spec_total(dataset7_specs(PAPER)) == 252


class TestSpecStructure:
    def test_dataset1_covers_grid(self):
        specs = dataset1_specs(BENCH)
        rooms = {s.room for s in specs}
        devices = {s.device for s in specs}
        words = {s.wake_word for s in specs}
        assert rooms == {"lab", "home"}
        assert devices == {"D1", "D2", "D3"}
        assert words == {"hey assistant", "computer", "amazon"}

    def test_dataset2_is_sony_replay(self):
        for spec in dataset2_specs(BENCH):
            assert spec.source == "replay"
            assert spec.replay_model == "sony"

    def test_dataset3_timeframes(self):
        assert {s.timeframe for s in dataset3_specs(BENCH)} == {"week", "month"}

    def test_dataset4_noise_kinds(self):
        kinds = {s.noise[0][0] for s in dataset4_specs(BENCH)}
        assert kinds == {"white", "tv"}
        assert all(s.noise[0][1] == 45.0 for s in dataset4_specs(BENCH))

    def test_dataset5_sitting(self):
        assert all(s.posture == "sitting" for s in dataset5_specs(BENCH))

    def test_dataset6_loudness(self):
        assert {s.loudness_db for s in dataset6_specs(BENCH)} == {60.0, 80.0}

    def test_dataset7_occlusions(self):
        assert {s.occlusion for s in dataset7_specs(BENCH)} == {
            "partial", "full", "raised",
        }

    def test_placement_specs(self):
        assert {s.placement for s in placement_specs(("B", "C"), BENCH)} == {"B", "C"}

    def test_border_angles(self):
        for spec in border_angle_specs(BENCH):
            assert set(spec.angles) == {75.0, -75.0}

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            Scale(name="bad", locations=((1.0, 0.0),), repetitions=0, sessions=1)


class TestBuilders:
    def tiny_specs(self):
        return tuple(
            CollectionSpec(
                locations=((1.0, 0.0),), angles=(0.0, 180.0), repetitions=1, session=s
            )
            for s in (0, 1)
        )

    def test_orientation_build_and_cache(self):
        clear_cache()
        specs = self.tiny_specs()
        a = build_orientation_dataset(specs, seed=0)
        b = build_orientation_dataset(specs, seed=0)
        assert a is b  # cached object
        assert len(a) == 4
        assert a.X.shape[1] == 242  # D2 4-channel feature dimension

    def test_orientation_gcc_only(self):
        specs = self.tiny_specs()
        baseline = build_orientation_dataset(specs, seed=0, gcc_only=True)
        assert baseline.X.shape[1] == 168
        assert baseline.extractor_name == "gcc-only"

    def test_liveness_build_labels(self):
        human = self.tiny_specs()[:1]
        replay = (CollectionSpec(
            locations=((1.0, 0.0),), angles=(0.0,), repetitions=1, source="replay"
        ),)
        ds = build_liveness_dataset(human + replay, seed=0)
        assert set(ds.labels.tolist()) == {LIVE_HUMAN, MECHANICAL}
        assert all(f.shape[1] == 40 for f in ds.features)

    def test_empty_specs_rejected(self):
        with pytest.raises(ValueError):
            build_orientation_dataset((), seed=0)

    def test_clear_cache(self):
        specs = self.tiny_specs()
        a = build_orientation_dataset(specs, seed=0)
        clear_cache()
        b = build_orientation_dataset(specs, seed=0)
        assert a is not b
        assert np.array_equal(a.X, b.X)
