"""E15 — impact of loudness (Section IV-B12).

Shape to hold: the 70 dB-trained model generalizes to 60 and 80 dB, and
louder speech is not worse (paper: 93.33% at 60 dB, 95.83% at 80 dB).
"""

from repro.datasets import BENCH
from repro.experiments import exp_loudness


def test_bench_loudness(benchmark, record_result):
    result = benchmark.pedantic(
        exp_loudness.run, kwargs={"scale": BENCH}, rounds=1, iterations=1
    )
    record_result(result)
    accuracy = result.summary
    assert accuracy["80dB"] >= accuracy["60dB"] - 3.0
    assert all(value > 80.0 for value in accuracy.values())
