"""E08 — Figure 14: F1 per environment.

Shape to hold: the quieter, less reverberant lab beats the home
(paper: 98.08% vs 94.39%), and both stay high.
"""

from repro.datasets import BENCH
from repro.experiments import exp_environment


def test_bench_environment(benchmark, record_result):
    result = benchmark.pedantic(
        exp_environment.run, kwargs={"scale": BENCH}, rounds=1, iterations=1
    )
    record_result(result)
    f1 = {row["room"]: row["f1_mean_pct"] for row in result.rows}
    assert f1["lab"] >= f1["home"] - 2.0
    assert f1["home"] > 85.0
    rt60 = {row["room"]: row["rt60_1khz_s"] for row in result.rows}
    assert rt60["home"] > rt60["lab"]
