"""E14 — sitting vs standing (Section IV-B11).

Shape to hold: a standing-trained model still detects orientation for a
seated speaker (paper: 93.33%).
"""

from repro.datasets import BENCH
from repro.experiments import exp_sitting


def test_bench_sitting(benchmark, record_result):
    result = benchmark.pedantic(
        exp_sitting.run, kwargs={"scale": BENCH}, rounds=1, iterations=1
    )
    record_result(result)
    assert result.summary["sitting_accuracy"] > 80.0
