"""E09 — Table IV: number of microphones.

Shape to hold: more channels help up to a point (paper peaks at 5 of
D2's 6 channels) and even two well-separated mics are serviceable.
"""

from repro.datasets import BENCH
from repro.experiments import exp_microphones


def test_bench_microphones(benchmark, record_result):
    result = benchmark.pedantic(
        exp_microphones.run, kwargs={"scale": BENCH}, rounds=1, iterations=1
    )
    record_result(result)
    accuracy = {row["n_channels"]: row["accuracy_pct"] for row in result.rows}
    assert result.summary["best_n_channels"] >= 3
    assert max(accuracy.values()) >= accuracy[2]
    assert all(value > 80.0 for value in accuracy.values())
