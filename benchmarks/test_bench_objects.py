"""E16 — surrounding objects (Section IV-B13).

Shape to hold: a fully blocked device degrades sharply (paper: 70%),
partial blockage costs little (95.83%), and raising the device above
the obstruction recovers accuracy (95%).
"""

from repro.datasets import BENCH
from repro.experiments import exp_objects


def test_bench_objects(benchmark, record_result):
    result = benchmark.pedantic(
        exp_objects.run, kwargs={"scale": BENCH}, rounds=1, iterations=1
    )
    record_result(result)
    accuracy = result.summary
    assert accuracy["full"] < accuracy["partial"]
    assert accuracy["raised"] > accuracy["full"]
    assert accuracy["partial"] > 80.0
