"""E27 (ablation) — feature-block contributions.

Shape to hold: the full feature set is at least as good as GCC windows
alone (the DoV baseline's information), and no tiny sub-block on its
own beats the full set by a meaningful margin.
"""

from repro.datasets import BENCH
from repro.experiments import exp_feature_ablation


def test_bench_feature_ablation(benchmark, record_result):
    result = benchmark.pedantic(
        exp_feature_ablation.run, kwargs={"scale": BENCH}, rounds=1, iterations=1
    )
    record_result(result)
    summary = result.summary
    assert summary["full"] >= summary["gcc_only"] - 2.0
    assert summary["full"] > 85.0
    accuracy = {row["features"]: row["accuracy_pct"] for row in result.rows}
    assert all(value > 60.0 for value in accuracy.values())
