"""E30 — adaptive-attacker robustness: hardening margins + render determinism.

One full E30 run (the E01-trained liveness network attacked by all four
``repro.attacks`` families at sophistication tiers 1-3) plus the attack
layer's byte-determinism contract, folded into a gateable
``BENCH_attacks.json``:

- per-tier un-hardened / hardened pooled EERs, with the hardened-beats-
  base margin gated numerically against the committed baseline;
- ``attacks.hardened_beats_base_all_tiers`` — the hardening claim as a
  strict equivalence bit;
- serial-vs-pool, dtype-invariance and content-keyed-reproducibility
  equivalence bits computed inside this run (strict at any threshold).

The report accumulates across this module's tests in definition order —
run the whole file.
"""

import json
import pathlib

import numpy as np
import pytest

from repro.attacks import attack_render_tasks, preset_attack
from repro.dsp.precision import precision
from repro.experiments import exp_attacks
from repro.obs import bench as obs_bench
from repro.runtime import render_captures
from repro.traffic import capture_fingerprint

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BASELINE_PATH = pathlib.Path(__file__).parent / "baselines" / "BENCH_attacks.json"

_STATE: dict = {}


def _e30():
    if "result" not in _STATE:
        _STATE["result"] = exp_attacks.run()
    return _STATE["result"]


def _determinism_bits() -> dict:
    """The attack layer's byte-determinism contract, measured directly."""
    if "bits" in _STATE:
        return _STATE["bits"]
    scenario = preset_attack("eq-replay", sophistication=2.0, seed=7)
    tasks = attack_render_tasks(scenario, n_utterances=2)
    serial = [capture_fingerprint(c) for c in render_captures(tasks, workers=1)]
    pooled = [capture_fingerprint(c) for c in render_captures(tasks, workers=2)]
    rebuilt = [
        capture_fingerprint(c)
        for c in render_captures(attack_render_tasks(scenario, n_utterances=2), workers=1)
    ]
    with precision("float32"):
        narrow = [
            capture_fingerprint(c)
            for c in render_captures(
                attack_render_tasks(scenario, n_utterances=2), workers=1
            )
        ]
    _STATE["bits"] = {
        "serial_pool_identical": serial == pooled,
        "content_keyed_reproducible": serial == rebuilt,
        "dtype_invariant": serial == narrow,
    }
    return _STATE["bits"]


def test_bench_attacks_hardening(benchmark, record_result):
    result = benchmark.pedantic(_e30, rounds=1, iterations=1)
    record_result(result)

    # The naive row anchors E01's operating point (same training flow).
    assert result.summary["naive_eer"] <= 5.0

    # The tentpole claim: at every sophistication tier the fused
    # four-cue decision beats the bare network posterior.
    assert result.summary["hardened_beats_base_all_tiers"] is True
    pooled = [r for r in result.rows if r["family"] == "pooled"]
    assert len(pooled) == 3
    for row in pooled:
        assert row["hardened_eer_pct"] < row["base_eer_pct"]
        assert row["n_attacks"] == 32


def test_bench_attacks_determinism():
    bits = _determinism_bits()
    assert bits["serial_pool_identical"]
    assert bits["content_keyed_reproducible"]
    assert bits["dtype_invariant"]


def test_bench_attacks_report_written(tmp_path):
    """Serialize the gateable report and prove the gate bites."""
    assert _STATE, "run the whole file in order"
    result = _STATE["result"]
    bits = _determinism_bits()

    report = obs_bench.BenchReport("attacks")
    report.add_metric(
        "attacks.naive_eer_pct",
        result.summary["naive_eer"],
        kind="ratio",
        direction="lower",
        gate=False,
    )
    for row in result.rows:
        if row["family"] != "pooled":
            continue
        tier = row["tier"]
        report.add_metric(
            f"attacks.tier{tier}_base_eer_pct",
            row["base_eer_pct"],
            kind="ratio",
            direction="lower",
            gate=False,
        )
        report.add_metric(
            f"attacks.tier{tier}_hardened_eer_pct",
            row["hardened_eer_pct"],
            kind="ratio",
            direction="lower",
        )
        report.add_metric(
            f"attacks.tier{tier}_margin_pp",
            row["base_eer_pct"] - row["hardened_eer_pct"],
            kind="ratio",
            direction="higher",
        )
    report.add_metric(
        "attacks.hardened_beats_base_all_tiers",
        bool(result.summary["hardened_beats_base_all_tiers"]),
        kind="equivalence",
    )
    for name, value in bits.items():
        report.add_metric(f"attacks.{name}", bool(value), kind="equivalence")

    RESULTS_DIR.mkdir(exist_ok=True)
    current_path = RESULTS_DIR / "BENCH_attacks.json"
    report.write(current_path)
    assert obs_bench.validate(json.loads(current_path.read_text())) == []

    # A report is always within tolerance of itself.
    assert obs_bench.main(["--compare", str(current_path), str(current_path)]) == 0

    # A collapsed hardening margin must fail even at a generous threshold.
    regressed = json.loads(current_path.read_text())
    for name, metric in regressed["metrics"].items():
        if name.endswith("_margin_pp"):
            metric["value"] = 0.0
    regressed_path = tmp_path / "regressed.json"
    regressed_path.write_text(json.dumps(regressed))
    assert (
        obs_bench.main(
            ["--compare", str(current_path), str(regressed_path), "--max-regress", "75"]
        )
        == 1
    )

    # Equivalence bits are strict at any threshold.
    flipped = json.loads(current_path.read_text())
    flipped["metrics"]["attacks.serial_pool_identical"]["value"] = False
    flipped_path = tmp_path / "flipped.json"
    flipped_path.write_text(json.dumps(flipped))
    assert (
        obs_bench.main(
            ["--compare", str(current_path), str(flipped_path), "--max-regress", "10000"]
        )
        == 1
    )

    if BASELINE_PATH.exists():
        assert (
            obs_bench.main(
                ["--compare", str(BASELINE_PATH), str(current_path), "--max-regress", "50"]
            )
            == 0
        )
