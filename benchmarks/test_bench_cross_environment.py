"""E11 — cross-environment performance (Section IV-B8).

Shape to hold: training in one room and testing in the other collapses
accuracy (paper: 77.73%), while one mixed session per room restores it
(paper: ~95-97%).
"""

from repro.datasets import BENCH
from repro.experiments import exp_cross_environment


def test_bench_cross_environment(benchmark, record_result):
    result = benchmark.pedantic(
        exp_cross_environment.run, kwargs={"scale": BENCH}, rounds=1, iterations=1
    )
    record_result(result)
    assert result.summary["mixed"] > result.summary["cross_room"] + 5.0
    assert result.summary["mixed"] > 88.0
