"""E17 — Figure 16: cross-user evaluation.

Shape to hold: leave-one-user-out on the DoV-like corpus lands below
the single-user ceiling but remains usable (paper: 88.66% accuracy,
F1 85.09%, with ADASYN chosen over SMOTE).
"""

from repro.datasets import BENCH
from repro.experiments import exp_cross_user


def test_bench_cross_user(benchmark, record_result):
    result = benchmark.pedantic(
        exp_cross_user.run, kwargs={"scale": BENCH}, rounds=1, iterations=1
    )
    record_result(result)
    accuracy = {row["upsampling"]: row["accuracy_pct"] for row in result.rows}
    assert 70.0 < accuracy["adasyn"] <= 100.0
    assert accuracy["adasyn"] >= accuracy["none"] - 5.0
    per_user = result.summary["per_user_adasyn"]
    assert len(per_user) >= 4
