"""Serving gateway under load: latency, frames-to-decision, equivalence.

A small-scale version of the CI soak (``python -m repro.serving.soak``)
runs here: a handful of concurrent simulated devices stream the
facing/side/back capture mix through a live ``ServingGateway`` over TCP
for a few seconds.  The report asserts and records:

- **streaming equals batch** — every streamed verdict's fingerprint is
  byte-identical to ``pipeline.evaluate`` on the same capture;
- **early never flips** — early exits only ever shorten latency;
- **early exit shortens** — rejected utterances decide in fewer frames
  than the stream carries;
- decision latency percentiles and frames-to-rejection, the numbers the
  CI job gates against ``benchmarks/baselines/BENCH_serving.json``.

The report accumulates across this module's tests in definition order —
run the whole file.
"""

import json
import pathlib

import numpy as np

from repro.obs import bench as obs_bench
from repro.reporting import ExperimentResult
from repro.serving import ServingConfig
from repro.serving.soak import (
    build_captures,
    build_pipeline,
    report_from_stats,
    run_soak_sync,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BASELINE_PATH = pathlib.Path(__file__).parent / "baselines" / "BENCH_serving.json"

_SESSIONS = 8
_SECONDS = 6.0

_STATE: dict = {}


def _soak():
    """One gateway soak, run once and shared across this module's tests."""
    if _STATE:
        return _STATE["stats"], _STATE["report"]
    pipeline = build_pipeline(seed=0)
    captures = build_captures(seed=1)
    config = ServingConfig(check_liveness=False, max_sessions=_SESSIONS + 4)
    stats = run_soak_sync(
        pipeline,
        captures,
        sessions=_SESSIONS,
        seconds=_SECONDS,
        config=config,
    )
    report = report_from_stats(stats)
    _STATE["stats"] = stats
    _STATE["report"] = report
    return stats, report


def test_bench_serving_soak(benchmark, record_result):
    stats, report = benchmark.pedantic(_soak, rounds=1, iterations=1)

    # The contract the whole streaming path exists to uphold.
    assert stats["errors"] == 0
    assert stats["fingerprint_mismatches"] == 0
    assert stats["early_flips"] == 0
    assert report.metrics["serving.streaming_equals_batch"]["value"] is True
    assert report.metrics["serving.early_never_flips"]["value"] is True
    assert report.metrics["serving.early_exit_shortens"]["value"] is True

    # Early exits must actually save frames on the rejecting mix.
    to_reject = report.metrics["serving.median_frames_to_rejection"]["value"]
    seen = float(np.median(np.asarray(stats["frames_seen"], dtype=float)))
    assert to_reject < seen

    record_result(
        ExperimentResult(
            experiment_id="R04",
            title="Serving gateway soak: streaming decisions vs batch evaluation",
            headers=["metric", "value"],
            rows=[
                {
                    "metric": "utterances",
                    "value": int(report.metrics["serving.utterances"]["value"]),
                },
                {
                    "metric": "p95_decision_ms",
                    "value": round(report.metrics["serving.p95_decision_ms"]["value"], 1),
                },
                {
                    "metric": "median_frames_to_rejection",
                    "value": to_reject,
                },
                {
                    "metric": "early_exit_fraction",
                    "value": round(
                        report.metrics["serving.early_exit_fraction"]["value"], 3
                    ),
                },
            ],
            paper="(infrastructure benchmark; no paper counterpart)",
            summary={
                "sessions": _SESSIONS,
                "seconds": _SECONDS,
                "utterances": int(report.metrics["serving.utterances"]["value"]),
                "streaming_equals_batch": True,
                "early_never_flips": True,
                "median_frames_to_rejection": to_reject,
                "median_frames_seen": seen,
            },
        )
    )


def test_bench_serving_report_written(tmp_path):
    """Serialize the soak report and prove the gate bites."""
    assert _STATE, "run the whole file in order"
    report = _STATE["report"]
    assert "serving.p95_decision_ms" in report.metrics

    RESULTS_DIR.mkdir(exist_ok=True)
    current_path = RESULTS_DIR / "BENCH_serving.json"
    report.write(current_path)
    assert obs_bench.validate(json.loads(current_path.read_text())) == []

    # A report is always within tolerance of itself.
    assert obs_bench.main(["--compare", str(current_path), str(current_path)]) == 0

    # Synthetic latency regression: 10x p95 must fail even at the CI
    # job's generous threshold.
    regressed = json.loads(current_path.read_text())
    regressed["metrics"]["serving.p95_decision_ms"]["value"] *= 10.0
    regressed_path = tmp_path / "regressed.json"
    regressed_path.write_text(json.dumps(regressed))
    assert (
        obs_bench.main(
            ["--compare", str(current_path), str(regressed_path), "--max-regress", "400"]
        )
        == 1
    )

    # Equivalence bits are strict at any threshold.
    flipped = json.loads(current_path.read_text())
    flipped["metrics"]["serving.streaming_equals_batch"]["value"] = False
    flipped_path = tmp_path / "flipped.json"
    flipped_path.write_text(json.dumps(flipped))
    assert (
        obs_bench.main(
            ["--compare", str(current_path), str(flipped_path), "--max-regress", "10000"]
        )
        == 1
    )

    if BASELINE_PATH.exists():
        assert (
            obs_bench.main(
                ["--compare", str(BASELINE_PATH), str(current_path), "--max-regress", "400"]
            )
            == 0
        )
