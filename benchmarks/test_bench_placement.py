"""E10 — device placement (Section IV-B7).

Shape to hold: a model trained at location A still performs above 80%
when the device moves to B or C within the room (paper: 97.5% / 91.25%).
"""

from repro.datasets import BENCH
from repro.experiments import exp_placement


def test_bench_placement(benchmark, record_result):
    result = benchmark.pedantic(
        exp_placement.run, kwargs={"scale": BENCH}, rounds=1, iterations=1
    )
    record_result(result)
    assert set(result.summary) == {"B", "C"}
    assert all(value > 75.0 for value in result.summary.values())
