"""E19 — comparison with the DoV baseline (Section II).

Shape to hold: HeadTalk's SRP-PHAT + directivity feature set beats the
GCC-PHAT-only baseline on identical audio (paper: 94.20% vs 92.0%).
"""

from repro.datasets import BENCH
from repro.experiments import exp_dov_comparison


def test_bench_dov_comparison(benchmark, record_result):
    result = benchmark.pedantic(
        exp_dov_comparison.run, kwargs={"scale": BENCH}, rounds=1, iterations=1
    )
    record_result(result)
    assert result.summary["headtalk_margin_pct"] > -2.0
    accuracy = {row["features"]: row["accuracy_pct"] for row in result.rows}
    assert all(value > 75.0 for value in accuracy.values())
