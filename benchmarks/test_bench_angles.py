"""E03 — Figure 10: per-angle accuracy.

Shape to hold: facing-zone and non-facing-zone angles score high while
the borderline +-45/60/75 arc is markedly worse (the soft boundary).
"""

import numpy as np

from repro.datasets import BENCH
from repro.experiments import exp_angles


def test_bench_angles(benchmark, record_result):
    result = benchmark.pedantic(
        exp_angles.run, kwargs={"scale": BENCH}, rounds=1, iterations=1
    )
    record_result(result)
    by_zone: dict[str, list[float]] = {}
    for row in result.rows:
        by_zone.setdefault(row["zone"], []).append(row["accuracy_pct"])
    assert result.summary["core_zone_accuracy"] > 85.0
    core = np.mean(by_zone["facing"] + by_zone["non-facing"])
    assert core > np.mean(by_zone["borderline"])
