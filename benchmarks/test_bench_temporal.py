"""E12 — Figure 15: temporal stability with incremental learning.

Shape to hold: week/month-old test data degrades the original model and
high-confidence self-training recovers most of the loss (paper: ~81-83%
stale, ~95% after absorbing 40 fresh samples).
"""

from repro.datasets import BENCH
from repro.experiments import exp_temporal


def test_bench_temporal(benchmark, record_result):
    result = benchmark.pedantic(
        exp_temporal.run, kwargs={"scale": BENCH}, rounds=1, iterations=1
    )
    record_result(result)
    for timeframe in ("week", "month"):
        stale = result.summary["stale"][timeframe]
        recovered = result.summary["recovered"][timeframe]
        # Self-training never collapses the model...
        assert recovered >= stale - 6.0
        assert recovered > 85.0
    # ...and aged data is harder than fresh cross-session data was.
    assert min(result.summary["stale"].values()) < 97.0
