"""E18 — run-time performance (Section IV-B15).

Shape to hold: both inference stages complete within a VA's wake-word
response window (the paper's PC numbers are 42 ms liveness + 136 ms
orientation; absolute values are hardware-bound).
"""

from repro.datasets import BENCH
from repro.experiments import exp_runtime


def test_bench_runtime(benchmark, record_result):
    result = benchmark.pedantic(
        exp_runtime.run, kwargs={"scale": BENCH, "n_trials": 20}, rounds=1, iterations=1
    )
    record_result(result)
    latency = {row["stage"]: row["mean_ms"] for row in result.rows}
    assert latency["liveness"] > 0
    assert latency["orientation"] > 0
    assert result.summary["total_ms"] < 2000.0  # well inside the response window
