"""E18 — run-time performance (Section IV-B15) + rendering engine.

Shape to hold: both inference stages complete within a VA's wake-word
response window (the paper's PC numbers are 42 ms liveness + 136 ms
orientation; absolute values are hardware-bound), and the runtime
layer's warm render cache beats cold serial rendering by >= 1.5x on the
E01 scene set (one-time FFT-plan/BLAS warmup is excluded from the cold
pass, so the ratio is pure cache effect).  The serial-vs-parallel ratio
is *recorded*, not asserted: on a single-core CI box process-pool
fan-out cannot win.
Parallel timing runs inside a pre-warmed :func:`persistent_pool`, so
one-time worker-spawn cost stays out of the measured region.

Every number also lands in ``benchmarks/results/BENCH_runtime.json``
(schema ``repro.obs.bench/1``); CI gates it against the committed
``benchmarks/baselines/BENCH_runtime.json`` with
``python -m repro.obs.bench --compare``.  The report accumulates across
the tests of this module in definition order — run the whole file to
produce a complete report.
"""

import json
import pathlib
import time

import numpy as np

from repro.datasets import BENCH, TINY
from repro.datasets.catalog import dataset1_specs, dataset2_specs
from repro.datasets.collection import render_tasks
from repro.experiments import exp_runtime
from repro.experiments.common import write_run_manifest
from repro.obs import (
    REGISTRY,
    export_trace,
    observed,
    profile_snapshot,
    reset_worker_totals,
    worker_totals,
)
from repro.obs import bench as obs_bench
from repro.obs import runlog as obs_runlog
from repro.obs.bench import BenchReport
from repro.obs.monitor import monitor_snapshot, reset_monitor
from repro.reporting import ExperimentResult
from repro.runtime import cache_stats, clear_caches, persistent_pool, render_captures

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
MANIFEST_DIR = pathlib.Path(__file__).parent / "manifests"
BASELINE_PATH = pathlib.Path(__file__).parent / "baselines" / "BENCH_runtime.json"

_REPORT = BenchReport("runtime")


def test_bench_runtime(benchmark, record_result):
    REGISTRY.reset()
    reset_monitor()
    with observed():
        result = benchmark.pedantic(
            exp_runtime.run, kwargs={"scale": BENCH, "n_trials": 20}, rounds=1, iterations=1
        )
    record_result(result)
    latency = {row["stage"]: row["mean_ms"] for row in result.rows}
    assert latency["liveness"] > 0
    assert latency["orientation"] > 0
    assert result.summary["total_ms"] < 2000.0  # well inside the response window
    assert result.summary["batch_matches_serial"] is True

    for stage in ("preprocess", "liveness", "orientation"):
        _REPORT.add_metric(f"e18.{stage}_mean_ms", latency[stage], unit="ms")
    _REPORT.add_metric("e18.total_ms", result.summary["total_ms"], unit="ms")
    _REPORT.add_metric(
        "e18.batch_per_capture_ms", result.summary["batch_per_capture_ms"], unit="ms"
    )
    _REPORT.add_metric(
        "e18.batch_matches_serial",
        result.summary["batch_matches_serial"],
        kind="equivalence",
    )
    for name, summary in REGISTRY.histograms("pipeline.").items():
        _REPORT.add_histogram(name, summary)

    # The observed run above doubles as the trace + run-manifest
    # artifact source: CI uploads both next to the bench report.
    RESULTS_DIR.mkdir(exist_ok=True)
    export_trace(RESULTS_DIR / "trace_runtime.json")
    manifest_path = write_run_manifest(
        result,
        seed=0,
        config={"scale": "BENCH", "n_trials": 20},
        stages={row["stage"]: row["mean_ms"] for row in result.rows},
        manifest_dir=MANIFEST_DIR,
    )
    loaded = obs_runlog.RunManifest.load(manifest_path)
    assert loaded.to_dict() == json.loads(manifest_path.read_text())


def _e01_tasks():
    """The E01 (liveness) scene set: Dataset-1 lab/D2 slice + Dataset-2."""
    specs = dataset1_specs(
        TINY, rooms=("lab",), devices=("D2",), wake_words=("computer", "hey assistant")
    ) + dataset2_specs(TINY)
    return [task for spec in specs for _, task in render_tasks(spec)]


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def test_bench_render_engine(benchmark, record_result):
    tasks = _e01_tasks()
    clear_caches()
    REGISTRY.reset()
    reset_worker_totals()

    def measure():
        cold, cold_s = _timed(lambda: render_captures(tasks, workers=1))
        # Two warm passes, keeping the faster: the cache state is
        # identical for both, so the min strips scheduler noise (this
        # runs on heavily shared CI cores).
        warm, warm_s = _timed(lambda: render_captures(tasks, workers=1))
        _, warm_again_s = _timed(lambda: render_captures(tasks, workers=1))
        warm_s = min(warm_s, warm_again_s)
        stats = cache_stats()
        clear_caches()
        # Spawn + warm the pool outside the timed region: worker
        # startup is a one-time cost, not render throughput.  The
        # parallel pass runs observed so the report records the pool
        # workers' own cache behaviour (each worker holds its own
        # render caches; sidecars carry the counters back).
        with observed(), persistent_pool(2):
            par, par_s = _timed(lambda: render_captures(tasks, workers=2))
        return cold, warm, par, cold_s, warm_s, par_s, stats

    cold, warm, par, cold_s, warm_s, par_s, stats = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    warm_equal = all(np.array_equal(a.channels, b.channels) for a, b in zip(cold, warm))
    parallel_equal = all(np.array_equal(a.channels, b.channels) for a, b in zip(cold, par))
    assert warm_equal
    assert parallel_equal

    warm_speedup = cold_s / warm_s
    parallel_speedup = cold_s / par_s
    per_capture = 1000.0 * cold_s / len(tasks)
    rows = [
        {"path": "serial cold", "seconds": round(cold_s, 3), "speedup_vs_cold": 1.0},
        {
            "path": "serial warm cache",
            "seconds": round(warm_s, 3),
            "speedup_vs_cold": round(warm_speedup, 2),
        },
        {
            "path": "parallel x2 cold (pre-warmed pool)",
            "seconds": round(par_s, 3),
            "speedup_vs_cold": round(parallel_speedup, 2),
        },
    ]
    record_result(
        ExperimentResult(
            experiment_id="R01",
            title="Rendering engine: cached + parallel batch renderer",
            headers=["path", "seconds", "speedup_vs_cold"],
            rows=rows,
            paper="(infrastructure benchmark; no paper counterpart)",
            summary={
                "n_captures": len(tasks),
                "cold_ms_per_capture": round(per_capture, 1),
                "warm_speedup": round(warm_speedup, 2),
                "parallel_speedup": round(parallel_speedup, 2),
                "dry_cache_hit_rate": round(stats["dry"].hit_rate, 3),
            },
        )
    )
    fully_memoized = stats["dry"].hits == 2 * len(tasks)  # warm passes fully memoized
    assert fully_memoized
    # The cold pass no longer pays one-time process warmup (exp_runtime's
    # warmup trials already populated the FFT-plan and BLAS caches), so
    # the warm/cold ratio is lower than when cold included those costs;
    # 1.5x is the noise-proof floor on a shared single core and the
    # recorded ratio in BENCH_runtime.json tracks the trend.
    assert warm_speedup >= 1.5

    _REPORT.add_metric("render.n_captures", len(tasks), kind="equivalence")
    _REPORT.add_metric("render.cold_seconds", cold_s, unit="s")
    _REPORT.add_metric("render.warm_seconds", warm_s, unit="s")
    # Like render.parallel_speedup, the parallel wall-clock is recorded
    # but not gated: on a single-core CI box two pool workers contend
    # with the parent for the same core and the absolute number swings
    # with machine load, not with code changes.
    _REPORT.add_metric("render.parallel_seconds", par_s, unit="s", gate=False)
    _REPORT.add_metric("render.cold_ms_per_capture", per_capture, unit="ms")
    _REPORT.add_metric(
        "render.warm_speedup", warm_speedup, kind="ratio", direction="higher", gate=False
    )
    _REPORT.add_metric(
        "render.parallel_speedup",
        parallel_speedup,
        kind="ratio",
        direction="higher",
        gate=False,
    )
    _REPORT.add_metric("render.warm_equals_cold", warm_equal, kind="equivalence")
    _REPORT.add_metric("render.parallel_equals_cold", parallel_equal, kind="equivalence")
    _REPORT.add_metric("render.dry_cache_fully_memoized", fully_memoized, kind="equivalence")

    # Worker-side telemetry from the observed parallel pass: how the
    # per-process render caches behaved inside the pool.
    totals = worker_totals()
    worker_hits = sum(
        counts["hits"] for t in totals.values() for counts in t["cache"].values()
    )
    worker_misses = sum(
        counts["misses"] for t in totals.values() for counts in t["cache"].values()
    )
    _REPORT.add_metric("render.worker_processes", len(totals), kind="info")
    _REPORT.add_metric("render.worker_cache_hits", worker_hits, kind="info")
    _REPORT.add_metric("render.worker_cache_misses", worker_misses, kind="info")
    for name, summary in REGISTRY.histograms("runtime.worker.").items():
        _REPORT.add_histogram(name, summary)


def test_bench_report_written(tmp_path):
    """Serialize the accumulated report and prove the gate bites.

    Runs last in this module: it needs the metrics the two benchmarks
    above recorded.  Writes ``results/BENCH_runtime.json``, validates it
    against the schema, and checks the comparator's exit codes — 0
    against the committed baseline (generous CI threshold), nonzero on a
    synthetically regressed copy and on a flipped equivalence bit.
    """
    assert "e18.total_ms" in _REPORT.metrics, "run the whole file in order"
    assert "render.cold_seconds" in _REPORT.metrics, "run the whole file in order"

    RESULTS_DIR.mkdir(exist_ok=True)
    current_path = RESULTS_DIR / "BENCH_runtime.json"
    _REPORT.add_profiles(profile_snapshot())
    # The observed E18 run fed the quality monitor (labelled decisions on
    # the facing capture); its snapshot rides along informationally —
    # QUALITY_*.json owns the enforcement.
    _REPORT.add_quality(monitor_snapshot())
    _REPORT.write(current_path)
    assert obs_bench.validate(json.loads(current_path.read_text())) == []

    # A report is always within tolerance of itself.
    assert obs_bench.main(["--compare", str(current_path), str(current_path)]) == 0

    # Synthetic wall-clock regression: 10x on a gated metric must fail
    # even at the CI job's generous 200% threshold.
    regressed = json.loads(current_path.read_text())
    regressed["metrics"]["render.cold_seconds"]["value"] *= 10.0
    regressed_path = tmp_path / "regressed.json"
    regressed_path.write_text(json.dumps(regressed))
    assert (
        obs_bench.main(
            ["--compare", str(current_path), str(regressed_path), "--max-regress", "200"]
        )
        == 1
    )

    # Equivalence bits are strict at any threshold.
    flipped = json.loads(current_path.read_text())
    flipped["metrics"]["render.parallel_equals_cold"]["value"] = False
    flipped_path = tmp_path / "flipped.json"
    flipped_path.write_text(json.dumps(flipped))
    assert (
        obs_bench.main(
            ["--compare", str(current_path), str(flipped_path), "--max-regress", "10000"]
        )
        == 1
    )

    if BASELINE_PATH.exists():
        assert (
            obs_bench.main(
                ["--compare", str(BASELINE_PATH), str(current_path), "--max-regress", "200"]
            )
            == 0
        )
