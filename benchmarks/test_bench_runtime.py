"""E18 — run-time performance (Section IV-B15) + rendering engine.

Shape to hold: both inference stages complete within a VA's wake-word
response window (the paper's PC numbers are 42 ms liveness + 136 ms
orientation; absolute values are hardware-bound), and the runtime
layer's warm render cache beats cold serial rendering by >= 2x on the
E01 scene set.  The serial-vs-parallel ratio is *recorded*, not
asserted: on a single-core CI box process-pool fan-out cannot win.
"""

import time

import numpy as np

from repro.datasets import BENCH, TINY
from repro.datasets.catalog import dataset1_specs, dataset2_specs
from repro.datasets.collection import render_tasks
from repro.experiments import exp_runtime
from repro.reporting import ExperimentResult
from repro.runtime import cache_stats, clear_caches, render_captures


def test_bench_runtime(benchmark, record_result):
    result = benchmark.pedantic(
        exp_runtime.run, kwargs={"scale": BENCH, "n_trials": 20}, rounds=1, iterations=1
    )
    record_result(result)
    latency = {row["stage"]: row["mean_ms"] for row in result.rows}
    assert latency["liveness"] > 0
    assert latency["orientation"] > 0
    assert result.summary["total_ms"] < 2000.0  # well inside the response window


def _e01_tasks():
    """The E01 (liveness) scene set: Dataset-1 lab/D2 slice + Dataset-2."""
    specs = dataset1_specs(
        TINY, rooms=("lab",), devices=("D2",), wake_words=("computer", "hey assistant")
    ) + dataset2_specs(TINY)
    return [task for spec in specs for _, task in render_tasks(spec)]


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def test_bench_render_engine(benchmark, record_result):
    tasks = _e01_tasks()
    clear_caches()

    def measure():
        cold, cold_s = _timed(lambda: render_captures(tasks, workers=1))
        # Two warm passes, keeping the faster: the cache state is
        # identical for both, so the min strips scheduler noise (this
        # runs on heavily shared CI cores).
        warm, warm_s = _timed(lambda: render_captures(tasks, workers=1))
        _, warm_again_s = _timed(lambda: render_captures(tasks, workers=1))
        warm_s = min(warm_s, warm_again_s)
        stats = cache_stats()
        clear_caches()
        par, par_s = _timed(lambda: render_captures(tasks, workers=2))
        return cold, warm, par, cold_s, warm_s, par_s, stats

    cold, warm, par, cold_s, warm_s, par_s, stats = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    for a, b in zip(cold, warm):
        assert np.array_equal(a.channels, b.channels)
    for a, b in zip(cold, par):
        assert np.array_equal(a.channels, b.channels)

    warm_speedup = cold_s / warm_s
    parallel_speedup = cold_s / par_s
    per_capture = 1000.0 * cold_s / len(tasks)
    rows = [
        {"path": "serial cold", "seconds": round(cold_s, 3), "speedup_vs_cold": 1.0},
        {"path": "serial warm cache", "seconds": round(warm_s, 3), "speedup_vs_cold": round(warm_speedup, 2)},
        {"path": "parallel x2 cold", "seconds": round(par_s, 3), "speedup_vs_cold": round(parallel_speedup, 2)},
    ]
    record_result(
        ExperimentResult(
            experiment_id="R01",
            title="Rendering engine: cached + parallel batch renderer",
            headers=["path", "seconds", "speedup_vs_cold"],
            rows=rows,
            paper="(infrastructure benchmark; no paper counterpart)",
            summary={
                "n_captures": len(tasks),
                "cold_ms_per_capture": round(per_capture, 1),
                "warm_speedup": round(warm_speedup, 2),
                "parallel_speedup": round(parallel_speedup, 2),
                "dry_cache_hit_rate": round(stats["dry"].hit_rate, 3),
            },
        )
    )
    assert stats["dry"].hits == 2 * len(tasks)  # warm passes fully memoized
    assert warm_speedup >= 2.0
