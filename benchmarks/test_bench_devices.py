"""E07 — Figure 13: F1 per device.

Shape to hold: all three prototypes work well; the wider-aperture,
lower-self-noise devices (D1/D2) are at least on par with D3
(paper: 97.47 / 96.26 / 94.99 %).
"""

from repro.datasets import BENCH
from repro.experiments import exp_devices


def test_bench_devices(benchmark, record_result):
    result = benchmark.pedantic(
        exp_devices.run, kwargs={"scale": BENCH}, rounds=1, iterations=1
    )
    record_result(result)
    f1 = result.summary
    assert all(f1[d] > 85.0 for d in ("D1", "D2", "D3"))
    assert f1["D1"] >= f1["D3"] - 3.0
    snr = {row["device"]: row["snr_db"] for row in result.rows}
    assert snr["D1"] > snr["D3"]  # quieter microphones on D1
