"""E25 (extension) — multi-VA addressee disambiguation.

Shape to hold: whichever device the speaker faces reports the higher
facing probability — head orientation picks the addressee.
"""

from repro.datasets import BENCH
from repro.experiments import exp_multi_va


def test_bench_multi_va(benchmark, record_result):
    result = benchmark.pedantic(
        exp_multi_va.run, kwargs={"scale": BENCH}, rounds=1, iterations=1
    )
    record_result(result)
    assert result.summary["addressee_disambiguated"]
