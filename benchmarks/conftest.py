"""Benchmark harness plumbing.

Each benchmark runs one paper experiment at BENCH scale exactly once
(``benchmark.pedantic`` with a single round — experiments are minutes-
long pipelines, not microbenchmarks), asserts the *shape* of the result
(who wins, roughly by how much, where crossovers fall) and records the
rendered table.  All tables are written to ``benchmarks/results/`` and
echoed at the end of the session so ``pytest benchmarks/ --benchmark-only``
reproduces every row the paper reports.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.reporting import ExperimentResult

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_COLLECTED: list[ExperimentResult] = []


@pytest.fixture()
def record_result():
    """Call with an ExperimentResult to persist and echo its table."""

    def _record(result: ExperimentResult) -> ExperimentResult:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{result.experiment_id}.txt"
        path.write_text(result.to_text() + "\n")
        _COLLECTED.append(result)
        return result

    return _record


def pytest_sessionfinish(session, exitstatus):
    if not _COLLECTED:
        return
    lines = ["", "=" * 72, "REPRODUCED TABLES AND FIGURES", "=" * 72]
    for result in sorted(_COLLECTED, key=lambda r: r.experiment_id):
        lines.append("")
        lines.append(result.to_text())
    report = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ALL.txt").write_text(report + "\n")
    # Echo to the terminal (bypasses capture at session end).
    reporter = session.config.pluginmanager.get_plugin("terminalreporter")
    if reporter is not None:
        reporter.write_line(report)
