"""E26 (extension) — facing-threshold operating points.

Shape to hold: FAR falls and FRR rises monotonically with the
threshold, and the orientation score EER is small.
"""

from repro.datasets import BENCH
from repro.experiments import exp_operating_point


def test_bench_operating_point(benchmark, record_result):
    result = benchmark.pedantic(
        exp_operating_point.run, kwargs={"scale": BENCH}, rounds=1, iterations=1
    )
    record_result(result)
    assert result.summary["far_monotone_decreasing"]
    assert result.summary["frr_monotone_increasing"]
    assert result.summary["eer_pct"] < 20.0
