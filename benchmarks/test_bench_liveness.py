"""E01 — liveness detection (Section IV-A1).

Regenerates the pretrain -> transfer -> incremental-retrain EER table.
Shape to hold: transfer to the in-domain pool degrades the pretrained
model, and a 20% incremental slice restores high accuracy / low EER.
"""

from repro.datasets import BENCH
from repro.experiments import exp_liveness


def test_bench_liveness(benchmark, record_result):
    result = benchmark.pedantic(
        exp_liveness.run, kwargs={"scale": BENCH}, rounds=1, iterations=1
    )
    record_result(result)
    assert result.summary["final_eer"] <= result.summary["transfer_eer"] + 1.0
    assert result.summary["final_accuracy"] > 88.0
    assert len(result.rows) == 4
