"""E02 — Table III: facing/non-facing definitions.

Shape to hold: Definition-4 (exclude the borderline arc, narrow
non-facing training arc) is the best performer, as in the paper
(96.95% accuracy, FRR 3.33%, FAR 2.78%).
"""

from repro.datasets import BENCH
from repro.experiments import exp_definitions


def test_bench_definitions(benchmark, record_result):
    result = benchmark.pedantic(
        exp_definitions.run, kwargs={"scale": BENCH}, rounds=1, iterations=1
    )
    record_result(result)
    accuracy = {row["definition"]: row["accuracy_pct"] for row in result.rows}
    assert accuracy["Definition-4"] >= accuracy["Definition-1"]
    assert result.summary["best_accuracy"] > 90.0
    assert accuracy["Definition-4"] >= result.summary["best_accuracy"] - 3.0
