"""E21 — user study (Section V, Table V).

Shape to hold: the simulated participants interact successfully with
the prototype; the SUS comparison favors HeadTalk over the mute button
(paper: 77.38 +- 6.26 vs 74.75 +- 8.12), both above the 68-point bar.
"""

from repro.datasets import BENCH
from repro.userstudy import simulation


def test_bench_userstudy(benchmark, record_result):
    result = benchmark.pedantic(
        simulation.run,
        kwargs={"scale": BENCH, "n_participants": 3},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    assert result.summary["mean_interaction_accuracy"] > 0.7
    assert result.summary["sus_headtalk"] > 68.0
    assert abs(result.summary["sus_headtalk"] - 77.38) < 8.0
    assert result.summary["headtalk_beats_mute"]
