"""E23 — Figures 5-6: the propagation insights behind the features.

Shape to hold: forward speech arrives stronger (Fig. 5) with a larger
high/low band ratio, and the SRP lag curve peaks higher when facing
(Fig. 6b).
"""

from repro.datasets import BENCH
from repro.experiments import exp_propagation_insights


def test_bench_propagation_insights(benchmark, record_result):
    result = benchmark.pedantic(
        exp_propagation_insights.run, kwargs={"scale": BENCH}, rounds=1, iterations=1
    )
    record_result(result)
    assert result.summary["rms_forward_over_backward"] > 1.05
    assert result.summary["hlbr_forward_over_backward"] > 1.05
    assert result.summary["srp_forward_over_backward"] > 0.9
