"""E06 — Figure 12: F1 per wake word.

Shape to hold: no significant differences across the three wake words
(paper: 95.92 / 96.40 / 96.39 %).
"""

from repro.datasets import BENCH
from repro.experiments import exp_wakewords


def test_bench_wakewords(benchmark, record_result):
    result = benchmark.pedantic(
        exp_wakewords.run, kwargs={"scale": BENCH}, rounds=1, iterations=1
    )
    record_result(result)
    means = result.column("f1_mean_pct")
    assert all(value > 85.0 for value in means)
    assert result.summary["max_minus_min_f1"] < 8.0
