"""Decision-path raw speed: float64 reference vs float32 fast path.

The orientation gate's hot path (preprocess -> GCC/SRP features ->
SVM) runs here in both precisions over the same rendered captures:

- the default ``float64`` path, measured per capture (this is the
  deployment shape: one wake word, one decision) — its fingerprints
  must stay bit-stable;
- the opt-in ``float32`` path through ``evaluate_batch`` (single-
  precision FFTs + one batched transform per utterance group), which
  must beat the float64 per-capture reference outright;
- the frame-granular ``pairwise_gcc_frames`` API against an equivalent
  per-frame loop — the batched transform must win.

Every number lands in ``benchmarks/results/BENCH_decision.json``
(schema ``repro.obs.bench/1``); CI gates it against the committed
``benchmarks/baselines/BENCH_decision.json`` with
``python -m repro.obs.bench --compare``.  The report accumulates across
this module's tests in definition order — run the whole file.
"""

import json
import pathlib
import time

import numpy as np

from repro.arrays.devices import default_channel_subset, get_device
from repro.core.config import DEFAULT_DEFINITION
from repro.core.liveness import LIVE_HUMAN, MECHANICAL, LivenessDetector
from repro.core.pipeline import HeadTalkPipeline
from repro.core.preprocessing import preprocess
from repro.datasets import TINY
from repro.datasets.collection import CollectionSpec, collect
from repro.dsp import pairwise_gcc, pairwise_gcc_frames, precision, srp_max_lag_for
from repro.experiments.common import default_dataset, fit_detector
from repro.obs import bench as obs_bench
from repro.obs.bench import BenchReport
from repro.reporting import ExperimentResult

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BASELINE_PATH = pathlib.Path(__file__).parent / "baselines" / "BENCH_decision.json"

_REPORT = BenchReport("decision")

_ROUNDS = 3
_SETUP: dict = {}


def _setup():
    """Pipeline + evaluation captures, built once per session."""
    if _SETUP:
        return _SETUP["pipeline"], _SETUP["captures"]
    seed = 0
    detector = fit_detector(default_dataset(TINY, seed), DEFAULT_DEFINITION)
    device = get_device("D2")
    array = device.subset(default_channel_subset(device))

    spec = CollectionSpec(
        room="lab",
        device="D2",
        wake_word="computer",
        locations=((1.0, 0.0), (2.0, 45.0)),
        angles=(0.0, 90.0, 180.0),
        repetitions=1,
    )
    captures = [capture for _, capture in collect(spec, seed + 1)]

    liveness = LivenessDetector(epochs=1, random_state=seed)
    waveforms = [preprocess(c).reference for c in captures[:4]]
    labels = np.asarray([LIVE_HUMAN, MECHANICAL, LIVE_HUMAN, MECHANICAL])
    liveness.fit(waveforms, labels, array.sample_rate)

    pipeline = HeadTalkPipeline(array=array, liveness=liveness, orientation=detector)
    _SETUP["pipeline"] = pipeline
    _SETUP["captures"] = captures
    return pipeline, captures


def test_bench_decision_throughput(benchmark, record_result):
    pipeline, captures = _setup()

    def measure():
        # Warmup: scipy FFT-plan/filter caches, BLAS spin-up, and the
        # per-geometry ArrayPlan — one-time costs, not decision latency.
        for capture in captures:
            pipeline.evaluate(capture, check_liveness=False)
        with precision("float32"):
            pipeline.evaluate_batch(captures, check_liveness=False)

        # float64, per capture (the deployment shape).
        latencies_ms = []
        reference = []
        for _ in range(_ROUNDS):
            for capture in captures:
                start = time.perf_counter()
                decision = pipeline.evaluate(capture, check_liveness=False)
                latencies_ms.append(1000.0 * (time.perf_counter() - start))
                reference.append(decision)

        # float32, batched (the offline/replay shape).
        fast_s = []
        fast_decisions = None
        with precision("float32"):
            for _ in range(_ROUNDS):
                start = time.perf_counter()
                fast_decisions = pipeline.evaluate_batch(captures, check_liveness=False)
                fast_s.append(time.perf_counter() - start)
        return latencies_ms, reference, min(fast_s), fast_decisions

    latencies_ms, reference, fast_s, fast_decisions = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    n = len(_SETUP["captures"])

    float64_ms = float(np.mean(latencies_ms))
    p95_ms = float(np.percentile(latencies_ms, 95))
    float64_dps = 1000.0 / float64_ms
    float32_dps = n / fast_s
    speedup = float32_dps / float64_dps

    # The float64 path is bit-stable: every repeat of a capture made the
    # same fingerprint.
    stable = all(
        reference[k].fingerprint() == reference[k % n].fingerprint()
        for k in range(len(reference))
    )
    assert stable
    # The float32 path reaches the same verdicts on these well-separated
    # captures (numeric parity is asserted in tests/core).
    verdicts_match = all(
        fast.accepted == ref.accepted and fast.reason == ref.reason
        for fast, ref in zip(fast_decisions, reference[:n])
    )
    assert verdicts_match
    # The point of the fast path: measurably faster than the float64
    # per-capture reference on the same machine, same captures.
    assert speedup > 1.0

    record_result(
        ExperimentResult(
            experiment_id="R02",
            title="Decision path: float32 + batched transforms vs float64 reference",
            headers=["path", "decisions_per_s", "speedup"],
            rows=[
                {"path": "float64 per-capture", "decisions_per_s": round(float64_dps, 1), "speedup": 1.0},
                {
                    "path": "float32 batched",
                    "decisions_per_s": round(float32_dps, 1),
                    "speedup": round(speedup, 2),
                },
            ],
            paper="(infrastructure benchmark; no paper counterpart)",
            summary={
                "n_captures": n,
                "float64_ms_per_decision": round(float64_ms, 2),
                "p95_ms": round(p95_ms, 2),
                "float32_speedup": round(speedup, 2),
                "verdicts_match": verdicts_match,
            },
        )
    )

    _REPORT.add_metric("decision.n_captures", n, kind="equivalence")
    _REPORT.add_metric("decision.float64_ms_per_decision", float64_ms, unit="ms")
    _REPORT.add_metric("decision.p95_ms", p95_ms, unit="ms")
    # Throughputs restate the wall-clock metrics in decisions/sec for
    # the report reader; the ms metrics above carry the gate.
    _REPORT.add_metric(
        "decision.float64_dps", float64_dps, kind="ratio", direction="higher", gate=False
    )
    _REPORT.add_metric(
        "decision.float32_batch_dps",
        float32_dps,
        kind="ratio",
        direction="higher",
        gate=False,
    )
    _REPORT.add_metric(
        "decision.speedup", speedup, kind="ratio", direction="higher", gate=False
    )
    _REPORT.add_metric("decision.float64_fingerprints_stable", stable, kind="equivalence")
    _REPORT.add_metric("decision.float32_verdicts_match", verdicts_match, kind="equivalence")


def test_bench_frame_batched_gcc(benchmark, record_result):
    """One batched transform over all frames beats a per-frame loop."""
    _, captures = _setup()
    array = get_device("D2").subset(default_channel_subset(get_device("D2")))
    pairs = array.pairs()
    max_lag = srp_max_lag_for(array)
    channels = preprocess(captures[0]).channels
    frame_length, hop_length = 1024, 512

    def measure():
        # Warmup both paths.
        batched = pairwise_gcc_frames(channels, pairs, max_lag, frame_length, hop_length)
        n_frames = batched.shape[0]

        def frame(k):
            start = k * hop_length
            chunk = channels[:, start : start + frame_length]
            if chunk.shape[1] < frame_length:
                chunk = np.pad(chunk, ((0, 0), (0, frame_length - chunk.shape[1])))
            return chunk

        looped_s = []
        for _ in range(_ROUNDS):
            start = time.perf_counter()
            looped = np.stack(
                [pairwise_gcc(frame(k), pairs, max_lag) for k in range(n_frames)]
            )
            looped_s.append(time.perf_counter() - start)

        batched_s = []
        for _ in range(_ROUNDS):
            start = time.perf_counter()
            batched = pairwise_gcc_frames(
                channels, pairs, max_lag, frame_length, hop_length
            )
            batched_s.append(time.perf_counter() - start)
        return looped, batched, min(looped_s), min(batched_s)

    looped, batched, looped_s, batched_s = benchmark.pedantic(measure, rounds=1, iterations=1)

    # Frame batching re-groups the same transforms: equal to within a
    # ulp (numpy's elementwise kernels round the whitening differently
    # across batch shapes, so this is allclose, not array_equal).
    identical = bool(np.allclose(looped, batched, rtol=1e-9, atol=1e-12))
    assert identical
    speedup = looped_s / batched_s
    assert speedup > 1.0

    record_result(
        ExperimentResult(
            experiment_id="R03",
            title="Frame-granular GCC: batched transform vs per-frame loop",
            headers=["path", "seconds", "speedup"],
            rows=[
                {"path": "per-frame loop", "seconds": round(looped_s, 4), "speedup": 1.0},
                {
                    "path": "batched frames",
                    "seconds": round(batched_s, 4),
                    "speedup": round(speedup, 2),
                },
            ],
            paper="(infrastructure benchmark; no paper counterpart)",
            summary={
                "n_frames": int(batched.shape[0]),
                "batched_gcc_speedup": round(speedup, 2),
                "matches_loop": identical,
            },
        )
    )

    _REPORT.add_metric("frames.n_frames", int(batched.shape[0]), kind="equivalence")
    _REPORT.add_metric("frames.per_frame_seconds", looped_s, unit="s")
    _REPORT.add_metric("frames.batched_seconds", batched_s, unit="s")
    _REPORT.add_metric(
        "frames.batched_gcc_speedup",
        speedup,
        kind="ratio",
        direction="higher",
        gate=False,
    )
    _REPORT.add_metric("frames.batched_equals_loop", identical, kind="equivalence")


def test_bench_report_written(tmp_path):
    """Serialize the accumulated report and prove the gate bites."""
    assert "decision.p95_ms" in _REPORT.metrics, "run the whole file in order"
    assert "frames.batched_gcc_speedup" in _REPORT.metrics, "run the whole file in order"

    RESULTS_DIR.mkdir(exist_ok=True)
    current_path = RESULTS_DIR / "BENCH_decision.json"
    _REPORT.write(current_path)
    assert obs_bench.validate(json.loads(current_path.read_text())) == []

    # A report is always within tolerance of itself.
    assert obs_bench.main(["--compare", str(current_path), str(current_path)]) == 0

    # Synthetic wall-clock regression: 10x on a gated metric must fail
    # even at the CI job's generous 200% threshold.
    regressed = json.loads(current_path.read_text())
    regressed["metrics"]["decision.p95_ms"]["value"] *= 10.0
    regressed_path = tmp_path / "regressed.json"
    regressed_path.write_text(json.dumps(regressed))
    assert (
        obs_bench.main(
            ["--compare", str(current_path), str(regressed_path), "--max-regress", "200"]
        )
        == 1
    )

    # Equivalence bits are strict at any threshold.
    flipped = json.loads(current_path.read_text())
    flipped["metrics"]["decision.float64_fingerprints_stable"]["value"] = False
    flipped_path = tmp_path / "flipped.json"
    flipped_path.write_text(json.dumps(flipped))
    assert (
        obs_bench.main(
            ["--compare", str(current_path), str(flipped_path), "--max-regress", "10000"]
        )
        == 1
    )

    if BASELINE_PATH.exists():
        assert (
            obs_bench.main(
                ["--compare", str(BASELINE_PATH), str(current_path), "--max-regress", "200"]
            )
            == 0
        )
