"""E04 — Figure 11: impact of training-set size.

Shape to hold: F1 rises with the per-class training count and is
already high (paper: >92%) by ~20 samples per class.
"""

from repro.datasets import BENCH
from repro.experiments import exp_training_size


def test_bench_training_size(benchmark, record_result):
    result = benchmark.pedantic(
        exp_training_size.run, kwargs={"scale": BENCH}, rounds=1, iterations=1
    )
    record_result(result)
    f1 = result.column("f1_mean_pct")
    assert f1[-1] >= f1[0] - 2.0  # grows (allowing small noise)
    assert result.summary["f1_at_20"] > 85.0
