"""E24 (extension) — moving speakers.

Shape to hold: P(facing) orders the turn scenarios by how much of the
utterance was spoken inside the facing zone; steady-facing scores far
above steady-backward.
"""

from repro.datasets import BENCH
from repro.experiments import exp_moving_speaker


def test_bench_moving_speaker(benchmark, record_result):
    result = benchmark.pedantic(
        exp_moving_speaker.run, kwargs={"scale": BENCH}, rounds=1, iterations=1
    )
    record_result(result)
    summary = result.summary
    assert summary["steady_facing"] > summary["steady_backward"]
    assert summary["steady_facing"] > summary["away"] - 0.05
    assert summary["toward"] >= summary["steady_backward"]
