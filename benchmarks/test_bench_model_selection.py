"""E20 — classifier selection (Section IV-A).

Shape to hold: the SVM is at (or within noise of) the top of the four
backends, matching the paper's choice of SVM over RF/DT/kNN.
"""

from repro.datasets import BENCH
from repro.experiments import exp_model_selection


def test_bench_model_selection(benchmark, record_result):
    result = benchmark.pedantic(
        exp_model_selection.run, kwargs={"scale": BENCH}, rounds=1, iterations=1
    )
    record_result(result)
    f1 = {row["backend"]: row["mean_f1_pct"] for row in result.rows}
    assert f1["svm"] >= result.summary["best_f1"] - 4.0
    assert f1["svm"] > f1["dt"]  # a 5-split tree cannot keep up
