"""E05 — impact of distance (Section IV-B2).

Shape to hold: accuracy falls with distance but stays high at 5 m
(paper: 98.38 / 97.50 / 92.55 %).
"""

from repro.datasets import BENCH
from repro.experiments import exp_distance


def test_bench_distance(benchmark, record_result):
    result = benchmark.pedantic(
        exp_distance.run, kwargs={"scale": BENCH}, rounds=1, iterations=1
    )
    record_result(result)
    accuracy = {row["distance_m"]: row["accuracy_pct"] for row in result.rows}
    assert accuracy[1.0] >= accuracy[5.0] - 3.0
    assert all(value > 80.0 for value in accuracy.values())
