"""E13 — impact of ambient noise (Section IV-B10).

Shape to hold: injected 45 dB loudspeaker interference costs the
clean-trained model roughly 10-15 accuracy points (paper: 89% white,
83.33% TV, vs ~98% clean).  The white-vs-TV ordering is sensitive to
the exact broadcast content and is not asserted (see EXPERIMENTS.md).
"""

from repro.datasets import BENCH
from repro.experiments import exp_noise


def test_bench_noise(benchmark, record_result):
    result = benchmark.pedantic(
        exp_noise.run, kwargs={"scale": BENCH}, rounds=1, iterations=1
    )
    record_result(result)
    accuracy = {row["noise"]: row["accuracy_pct"] for row in result.rows}
    clean = accuracy["none (33 dB ambient)"]
    tv = accuracy["tv @ 45 dB"]
    white = accuracy["white @ 45 dB"]
    assert clean >= max(tv, white) - 1.0  # noise never helps
    assert min(tv, white) < clean  # and it measurably hurts
    assert min(tv, white) > 70.0  # but does not break the system
