"""E22 — Figure 3: human vs replay spectra.

Shape to hold: live speech keeps several times more >4 kHz energy than
loudspeaker replay, and its high-frequency decay is shallower.
"""

from repro.datasets import BENCH
from repro.experiments import exp_spectra


def test_bench_spectra(benchmark, record_result):
    result = benchmark.pedantic(
        exp_spectra.run, kwargs={"scale": BENCH}, rounds=1, iterations=1
    )
    record_result(result)
    assert result.summary["human_to_replay_hf_ratio"] > 2.0
    slopes = {row["source"]: row["decay_db_per_octave"] for row in result.rows}
    assert slopes["live human"] > slopes["sony srs-x5 replay"]
    assert slopes["live human"] > slopes["galaxy s21 replay"]
